//! The parallel sliced executor: a stem-only sweep over slice subtasks.
//!
//! Each of the `2^|S|` assignments of the sliced edges is an independent
//! subtask: the leaf tensors carrying sliced edges are sliced to the
//! assignment's values, the contraction tree is replayed bottom-up, and the
//! subtask results are combined — *summed* over sliced edges that are
//! interior to the network (the two halves of a contracted dimension) and
//! *stacked* over sliced edges that are open outputs (the paper's
//! slice-then-stack treatment of the big output tensor).
//!
//! ## Two-level partial-contraction reuse
//!
//! The paper's central observation (§4.2) is that only the *stem* — the
//! dominant contraction spine — varies across slice assignments; branches
//! are pre-contracted once. The executor exploits this with the node
//! classification computed at plan time (see
//! [`qtn_tensornet::classify_nodes`]), splitting the tree schedule into
//! three phases with three different lifetimes:
//!
//! 1. **Branch** contractions depend on no sliced edge and no output
//!    projector. They run **once per plan**, on the first execution, and are
//!    memoized in the plan-lifetime [`BranchCache`] shared by every
//!    execution (and every clone of the plan's `Arc`).
//! 2. **Frontier** contractions depend on rebindable output projectors but
//!    on no sliced edge. They run **once per execution**, absorbing the
//!    current [`LeafOverrides`] into a per-execution frontier.
//! 3. **Stem** contractions depend on sliced edges. Only these are replayed
//!    for each of the `2^|S|` subtasks, seeded with the cached branch and
//!    frontier tensors.
//!
//! Setting [`ExecutorConfig::reuse`] to `false` forces the original full
//! per-subtask replay; results are **bit-identical** either way, because
//! every node's tensor is produced by the same pairwise contractions in the
//! same order — reuse only changes how often they run.
//! [`ExecutionStats`] reports the per-phase FLOP split and the work avoided
//! (`branch_flops_reused`).
//!
//! ## Lifetime-pooled stem sweep
//!
//! With [`ExecutorConfig::pool`] on (the default), the per-subtask stem
//! replay runs through per-worker [`BufferPool`]s instead of allocating:
//! sliced leaves are gathered straight into recycled buffers
//! ([`qtn_tensor::DenseTensor::slice_into`]), contractions run through
//! precompiled [`qtn_tensor::ContractionKernel`]s into recycled output and
//! permutation-scratch buffers, and every buffer returns to its size
//! class's free list the moment the lifetime analysis
//! ([`qtn_tensornet::lifetime`]) says it dies. After the first subtask
//! warms the free lists the hot loop performs **zero heap allocations**;
//! pools persist on the plan across executions (like the branch cache), so
//! a compiled circuit's second execution allocates no stem buffers at all
//! (the per-execution frontier build still allocates its own tensors).
//! [`ExecutionStats::buffers_allocated`] / `buffers_reused` prove it, and
//! [`ExecutionStats::peak_bytes_in_flight`] matches the plan's
//! [`ExecutionStats::predicted_peak_bytes`] exactly. Results stay
//! bit-identical: pooling changes where bytes live, never what is computed.
//!
//! Subtasks run on a persistent [`WorkerPool`] — threads are spawned once
//! and reused across executions, mirroring the paper's long-lived processes
//! sweeping millions of slice subtasks. Work is distributed by *static
//! striding* (worker `w` takes subtasks `w, w + W, w + 2W, …`) and the
//! per-worker partial accumulators are reduced in worker order, so repeated
//! executions of the same plan produce **bit-identical** results — the
//! floating-point summation order never depends on thread scheduling.

use crate::error::Error;
use crate::fault::{self, FaultPoint};
use crate::planner::SimulationPlan;
use crate::pool::{BufferPool, PoolCounters};
use crate::sync::lock_unpoisoned;
use qtn_tensor::{
    contract_pair, Complex64, ContractionKernel, ContractionSpec, DenseTensor, GemmPath, IndexId,
    IndexSet,
};
use qtn_tensornet::NodeClass;
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Replacement leaf data keyed by network vertex id (position in
/// `SimulationPlan::build.nodes`). Produced by
/// [`qtn_circuit::NetworkBuild::rebind_output`]: executing a plan with
/// overrides retargets the output projectors without touching the plan.
pub type LeafOverrides = HashMap<usize, DenseTensor<Complex64>>;

/// Executor options.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Number of worker threads ("processes" in the paper's terminology).
    pub workers: usize,
    /// Execute at most this many subtasks (0 = all). Benchmarks use this to
    /// measure per-subtask cost without running an entire sweep.
    pub max_subtasks: usize,
    /// Reuse slice-invariant partial contractions across subtasks (the
    /// stem-only sweep): branch tensors are contracted once per plan,
    /// frontier tensors once per execution, and only Stem-class nodes are
    /// replayed per subtask. Disable to force the full per-subtask replay —
    /// the result is bit-identical, only slower.
    pub reuse: bool,
    /// Run the stem sweep on per-worker [`BufferPool`]s: every sliced leaf,
    /// intermediate and permutation-scratch buffer is recycled, so after
    /// the first subtask warms the free lists the hot loop performs zero
    /// heap allocations (pools persist across executions of the same plan,
    /// like the branch cache, so later executions allocate no stem buffers
    /// at all).
    /// Results are bit-identical to the unpooled path — the same
    /// contractions run in the same order, only the buffers differ.
    /// Effective only together with [`reuse`](Self::reuse); disable to fall
    /// back to allocate-per-contraction execution.
    pub pool: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            max_subtasks: 0,
            reuse: true,
            pool: true,
        }
    }
}

/// What the executor measured.
///
/// `flops` is the real work this call executed; it always equals
/// `stem_flops + frontier_flops + branch_flops`. With reuse disabled (or
/// bypassed), every contraction is replayed per subtask, so
/// `stem_flops == flops` and the other phase counters are zero.
#[derive(Debug, Clone, Default)]
pub struct ExecutionStats {
    /// Subtasks actually executed.
    pub subtasks_run: usize,
    /// Total subtasks of the plan.
    pub subtasks_total: usize,
    /// Real floating point operations executed by this call.
    pub flops: u64,
    /// Portion of `flops` spent replaying stem-class contractions across
    /// the slice subtasks (both StemPure and StemMixed).
    pub stem_flops: u64,
    /// Portion of `stem_flops` spent on StemPure contractions — the
    /// slice-dependent but projector-independent prefix. In a batched
    /// execution this runs **once per slice assignment** regardless of how
    /// many bitstrings the batch holds; in a single execution it is simply
    /// the pure share of the per-subtask replay. Zero when reuse is off
    /// (the full replay does not classify its contractions).
    pub stem_pure_flops: u64,
    /// Floating point operations a loop of single executions would have
    /// spent re-running the StemPure prefix but this call avoided by
    /// batching: `(amplitudes_in_batch − 1) ×` the executed
    /// [`stem_pure_flops`](Self::stem_pure_flops). Zero outside batched
    /// execution.
    pub stem_pure_flops_reused: u64,
    /// StemPure pairwise contractions executed by this call. In a batched
    /// execution this equals the StemPure schedule length times the number
    /// of subtasks run — independent of the batch size.
    pub stem_pure_contractions: u64,
    /// Portion of `stem_flops` spent on StemMixed contractions — the
    /// slice-dependent *and* projector-dependent suffix. A batched
    /// execution computes each mixed intermediate once per distinct
    /// `(subtask, dependent-output-bits)` key instead of once per
    /// bitstring, so this is the deduped bill actually executed. Zero when
    /// reuse is off (the full replay does not classify its contractions).
    pub stem_mixed_flops: u64,
    /// Floating point operations a loop of single executions would have
    /// spent replaying StemMixed contractions per bitstring but this call
    /// avoided by keyed deduplication: the per-`(subtask, bitstring)` mixed
    /// bill times the batch, minus the executed
    /// [`stem_mixed_flops`](Self::stem_mixed_flops). Zero outside batched
    /// execution.
    pub stem_mixed_flops_reused: u64,
    /// StemMixed pairwise contractions executed by this call. In a batched
    /// execution every mixed contraction runs once per distinct key its
    /// output depends on (per subtask), not once per bitstring.
    pub stem_mixed_contractions: u64,
    /// StemMixed pairwise contractions a per-bitstring replay would have
    /// executed but keyed deduplication skipped (the batch shared an
    /// already-computed intermediate). Zero outside batched execution.
    pub stem_mixed_contractions_deduped: u64,
    /// Sum over StemMixed contraction nodes of the number of distinct
    /// dependent-bits keys the batch presented — the structural lower bound
    /// on per-subtask mixed contractions. On spine-shaped mixed suffixes
    /// (nested dependency masks) the executed
    /// [`stem_mixed_contractions`](Self::stem_mixed_contractions) equals
    /// exactly this times the subtasks run. Zero outside batched execution.
    pub stem_mixed_distinct_keys: u64,
    /// Number of amplitudes this execution produced: the batch size of a
    /// batched multi-amplitude execution, 1 for single executions.
    pub amplitudes_in_batch: u64,
    /// Portion of `flops` spent contracting the per-execution frontier
    /// (output-projector-dependent, slice-invariant nodes) — paid once per
    /// execution, not per subtask.
    pub frontier_flops: u64,
    /// Portion of `flops` spent building the plan-lifetime branch cache.
    /// Only the execution that builds the cache pays this; every later
    /// execution sharing that plan instance reports 0.
    pub branch_flops: u64,
    /// Floating point operations a full per-subtask replay would have
    /// executed but this call avoided thanks to the reuse layer. Counts
    /// *both* cache levels: branch contractions not replayed per subtask
    /// (or at all, once the cache exists) and frontier contractions
    /// replayed once instead of per subtask.
    pub branch_flops_reused: u64,
    /// Branch-class pairwise contractions executed by this call (non-zero
    /// only while building the plan-lifetime cache).
    pub branch_contractions: u64,
    /// Frontier-class pairwise contractions executed by this call.
    pub frontier_contractions: u64,
    /// Parameter-slot updates applied by
    /// `CompiledCircuit::rebind_parameters` that this call's branch-cache
    /// build absorbed. Reported (like [`branch_flops`](Self::branch_flops))
    /// only by the execution that performs the post-rebind build; zero on a
    /// cold compile and on every execution reusing an already-built cache.
    pub params_rebound: u64,
    /// Previously cached branch entries the rebinds' invalidation cones
    /// dropped — exactly the kept roots whose parameter dependency mask
    /// intersects a rebound slot; this call rebuilt only those.
    pub branch_entries_invalidated: u64,
    /// Floating point operations of the branch entries that *survived* the
    /// rebinds and were carried over instead of re-executed. The flop
    /// identity `branch_flops_survived_rebind + branch_flops ==` the cold
    /// build's `branch_flops` holds exactly.
    pub branch_flops_survived_rebind: u64,
    /// Contractions whose GEMM dispatched to a fully unrolled
    /// rank-specialized micro-kernel (m, n ∈ {1, 2, 4}, k ∈ {2, 4, 8} — the
    /// bond-dimension-2 hot shapes).
    pub gemm_micro: u64,
    /// Contractions whose GEMM degenerated to a matrix–vector product
    /// (m == 1 or n == 1) and took the dedicated GEMV row/column kernel.
    pub gemm_gemv: u64,
    /// Contractions dispatched to the streaming narrow-matrix kernel.
    pub gemm_narrow: u64,
    /// Contractions dispatched to the packed/blocked GEMM.
    pub gemm_blocked: u64,
    /// Portion of the dispatched contractions that took a SIMD code path
    /// (AVX2+FMA or NEON) instead of the scalar reference kernels. Zero
    /// when the process dispatches at the scalar level — no SIMD hardware,
    /// `QTNSIM_FORCE_SCALAR` set, or a test override.
    pub gemm_simd: u64,
    /// SIMD level the executor dispatched at (`"scalar"`, `"neon"`,
    /// `"avx2-fma"`; see [`qtn_tensor::simd_level`]). Empty on a
    /// default-constructed stats value.
    pub simd_level: &'static str,
    /// Buffers the per-worker pools had to freshly allocate, summed over
    /// workers. On a cold pool this equals the plan's predicted slot count
    /// times [`workers`](Self::workers) (the worker count actually used,
    /// which is capped at the subtask count — idle workers allocate
    /// nothing); every later execution of the same plan reports 0 — the
    /// proof of the zero-allocation steady state. Zero when pooling is off.
    pub buffers_allocated: u64,
    /// Buffers served from pool free lists instead of the allocator,
    /// summed over workers. Zero when pooling is off.
    pub buffers_reused: u64,
    /// Exact high-water mark of bytes checked out of any single worker's
    /// buffer pool (each worker replays one subtask at a time, so this is
    /// the per-worker stem working set, not the sum across workers). Zero
    /// when pooling is off.
    pub peak_bytes_in_flight: u64,
    /// The plan-time prediction for `peak_bytes_in_flight`: the stem
    /// phase's [`qtn_tensornet::PhaseMemoryPlan::peak_bytes`]. Lifetimes of
    /// contraction intermediates are statically known, so a pooled
    /// execution satisfies `peak_bytes_in_flight <= predicted_peak_bytes`
    /// exactly (equality whenever at least one sliced subtask ran).
    pub predicted_peak_bytes: u64,
    /// Wall-clock time of the whole execution, including the serial cache
    /// phases (branch build, frontier build) when reuse runs them.
    pub wall_seconds: f64,
    /// Mean wall-clock time of one subtask on one worker, measured over the
    /// parallel sweep only — the one-off cache builds are excluded. With
    /// reuse enabled this prices a *stem-only* replay; extrapolations that
    /// need the cost of a standalone full subtask should measure with
    /// [`ExecutorConfig::reuse`] disabled.
    pub seconds_per_subtask: f64,
    /// Worker threads used.
    pub workers: usize,
}

impl ExecutionStats {
    /// Sustained flops/s over the execution.
    pub fn sustained_flops(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.flops as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Fold another execution's measurements into this one, turning a
    /// sequence of per-execution stats into a running service-level total:
    /// counters and wall time add up, high-water marks (`peak_bytes_in_flight`,
    /// `predicted_peak_bytes`, `workers`) take the maximum, and the derived
    /// `seconds_per_subtask` becomes the aggregate mean wall time per
    /// executed subtask. `qtnsim-serve` aggregates every dispatched batch
    /// through this before exporting the totals on its stats endpoint.
    pub fn absorb(&mut self, other: &ExecutionStats) {
        self.subtasks_run += other.subtasks_run;
        self.subtasks_total += other.subtasks_total;
        self.flops += other.flops;
        self.stem_flops += other.stem_flops;
        self.stem_pure_flops += other.stem_pure_flops;
        self.stem_pure_flops_reused += other.stem_pure_flops_reused;
        self.stem_pure_contractions += other.stem_pure_contractions;
        self.stem_mixed_flops += other.stem_mixed_flops;
        self.stem_mixed_flops_reused += other.stem_mixed_flops_reused;
        self.stem_mixed_contractions += other.stem_mixed_contractions;
        self.stem_mixed_contractions_deduped += other.stem_mixed_contractions_deduped;
        self.stem_mixed_distinct_keys += other.stem_mixed_distinct_keys;
        self.amplitudes_in_batch += other.amplitudes_in_batch;
        self.frontier_flops += other.frontier_flops;
        self.branch_flops += other.branch_flops;
        self.branch_flops_reused += other.branch_flops_reused;
        self.branch_contractions += other.branch_contractions;
        self.frontier_contractions += other.frontier_contractions;
        self.params_rebound += other.params_rebound;
        self.branch_entries_invalidated += other.branch_entries_invalidated;
        self.branch_flops_survived_rebind += other.branch_flops_survived_rebind;
        self.gemm_micro += other.gemm_micro;
        self.gemm_gemv += other.gemm_gemv;
        self.gemm_narrow += other.gemm_narrow;
        self.gemm_blocked += other.gemm_blocked;
        self.gemm_simd += other.gemm_simd;
        if self.simd_level.is_empty() {
            self.simd_level = other.simd_level;
        }
        self.buffers_allocated += other.buffers_allocated;
        self.buffers_reused += other.buffers_reused;
        self.peak_bytes_in_flight = self.peak_bytes_in_flight.max(other.peak_bytes_in_flight);
        self.predicted_peak_bytes = self.predicted_peak_bytes.max(other.predicted_peak_bytes);
        self.wall_seconds += other.wall_seconds;
        self.seconds_per_subtask =
            if self.subtasks_run > 0 { self.wall_seconds / self.subtasks_run as f64 } else { 0.0 };
        self.workers = self.workers.max(other.workers);
    }

    /// Render every counter as a JSON object (see [`crate::json`]) — the one
    /// formatting path shared by the `BENCH_*.json` writers and the
    /// `qtnsim-serve` stats endpoint.
    pub fn to_json(&self) -> String {
        let mut obj = crate::json::JsonObject::new();
        obj.field_usize("subtasks_run", self.subtasks_run)
            .field_usize("subtasks_total", self.subtasks_total)
            .field_u64("flops", self.flops)
            .field_u64("stem_flops", self.stem_flops)
            .field_u64("stem_pure_flops", self.stem_pure_flops)
            .field_u64("stem_pure_flops_reused", self.stem_pure_flops_reused)
            .field_u64("stem_pure_contractions", self.stem_pure_contractions)
            .field_u64("stem_mixed_flops", self.stem_mixed_flops)
            .field_u64("stem_mixed_flops_reused", self.stem_mixed_flops_reused)
            .field_u64("stem_mixed_contractions", self.stem_mixed_contractions)
            .field_u64("stem_mixed_contractions_deduped", self.stem_mixed_contractions_deduped)
            .field_u64("stem_mixed_distinct_keys", self.stem_mixed_distinct_keys)
            .field_u64("amplitudes_in_batch", self.amplitudes_in_batch)
            .field_u64("frontier_flops", self.frontier_flops)
            .field_u64("branch_flops", self.branch_flops)
            .field_u64("branch_flops_reused", self.branch_flops_reused)
            .field_u64("branch_contractions", self.branch_contractions)
            .field_u64("frontier_contractions", self.frontier_contractions)
            .field_u64("params_rebound", self.params_rebound)
            .field_u64("branch_entries_invalidated", self.branch_entries_invalidated)
            .field_u64("branch_flops_survived_rebind", self.branch_flops_survived_rebind)
            .field_u64("gemm_micro", self.gemm_micro)
            .field_u64("gemm_gemv", self.gemm_gemv)
            .field_u64("gemm_narrow", self.gemm_narrow)
            .field_u64("gemm_blocked", self.gemm_blocked)
            .field_u64("gemm_simd", self.gemm_simd)
            .field_str("simd_level", self.simd_level)
            .field_u64("buffers_allocated", self.buffers_allocated)
            .field_u64("buffers_reused", self.buffers_reused)
            .field_u64("peak_bytes_in_flight", self.peak_bytes_in_flight)
            .field_u64("predicted_peak_bytes", self.predicted_peak_bytes)
            .field_f64("wall_seconds", self.wall_seconds)
            .field_f64("seconds_per_subtask", self.seconds_per_subtask)
            .field_usize("workers", self.workers);
        obj.finish()
    }

    /// Fold a dispatch tally into the `gemm_*` counters.
    fn apply_gemm(&mut self, tally: &GemmTally) {
        self.gemm_micro += tally.micro;
        self.gemm_gemv += tally.gemv;
        self.gemm_narrow += tally.narrow;
        self.gemm_blocked += tally.blocked;
        self.gemm_simd += tally.simd;
    }
}

/// Running tally of which GEMM kernel the executor's contractions dispatch
/// to, in the buckets [`ExecutionStats`] reports. Each contraction is
/// classified through its frozen [`qtn_tensor::KernelPlan`] — the compiled
/// kernel of a stem-replay step, the per-call selection everywhere else —
/// so the tally is exact per execution and never reads the process-global
/// dispatch counters (which concurrent executions share).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GemmTally {
    /// Rank-specialized micro-kernel dispatches.
    pub micro: u64,
    /// GEMV row/column dispatches.
    pub gemv: u64,
    /// Streaming narrow-kernel dispatches.
    pub narrow: u64,
    /// Packed/blocked GEMM dispatches.
    pub blocked: u64,
    /// Dispatches (of any class) that took a SIMD code path.
    pub simd: u64,
}

impl GemmTally {
    fn record(&mut self, path: GemmPath) {
        match path {
            GemmPath::MicroSimd => {
                self.micro += 1;
                self.simd += 1;
            }
            GemmPath::MicroScalar => self.micro += 1,
            GemmPath::GemvRow | GemmPath::GemvCol => self.gemv += 1,
            GemmPath::NarrowSimd => {
                self.narrow += 1;
                self.simd += 1;
            }
            GemmPath::NarrowScalar => self.narrow += 1,
            GemmPath::BlockedSimd => {
                self.blocked += 1;
                self.simd += 1;
            }
            GemmPath::BlockedScalar => self.blocked += 1,
        }
    }

    /// Record a contraction executed through per-call dispatch
    /// ([`contract_pair`] selects from the spec's shape at call time).
    fn record_spec(&mut self, spec: &ContractionSpec) {
        self.record(spec.kernel_plan().taken::<Complex64>());
    }

    /// Record a contraction executed through a precompiled kernel (whose
    /// dispatch was frozen at [`ContractionKernel::new`] time).
    fn record_kernel(&mut self, kernel: &ContractionKernel) {
        self.record(kernel.gemm_plan().taken::<Complex64>());
    }

    fn add(&mut self, other: &GemmTally) {
        self.micro += other.micro;
        self.gemv += other.gemv;
        self.narrow += other.narrow;
        self.blocked += other.blocked;
        self.simd += other.simd;
    }
}

// ---------------------------------------------------------------------------
// Partial-contraction reuse: branch cache and per-execution frontier
// ---------------------------------------------------------------------------

/// The plan-lifetime cache of Branch-class tensors: the roots of the maximal
/// subtrees that depend on no sliced edge and no output projector, contracted
/// once and reused by every execution of the plan (§4.2 of the paper:
/// branches are pre-contracted, only the stem is swept per slice assignment).
///
/// Built lazily by the first reusing execution and memoized inside
/// [`SimulationPlan`], whose clones all *share* the cache: every execution
/// of the plan or any clone of it — including concurrent ones, compiles
/// served from the engine's plan cache, and repeated
/// [`execute_plan`]/[`try_execute_plan`] calls on the same plan value —
/// reuses one build.
#[derive(Debug, Clone)]
pub struct BranchCache {
    /// Kept tensors keyed by tree-node id (the classification's
    /// `branch_keep` set).
    tensors: HashMap<usize, DenseTensor<Complex64>>,
    /// Per kept root: the `(flops, contractions)` cost of producing its
    /// subtree. Every branch-schedule step is owned by exactly one kept
    /// root (each node feeds exactly one parent), so these partition the
    /// cold bill — the attribution a parameter rebind uses to price the
    /// entries it carries over versus the cone it drops.
    entry_costs: HashMap<usize, (u64, u64)>,
    /// Real floating point operations spent building the cache — only the
    /// contractions *this* build executed, excluding carried-over entries.
    pub flops: u64,
    /// Pairwise contractions performed by this build.
    pub contractions: u64,
    /// Kernel-dispatch tally of the contractions this build executed.
    pub gemm: GemmTally,
    /// The full cold bill: flops of every entry, whether executed by this
    /// build or carried over from a pre-rebind cache. On a cold build this
    /// equals [`flops`](Self::flops); after a partial (post-rebind) build,
    /// `cold_flops == flops + survived_flops` exactly.
    pub cold_flops: u64,
    /// Flops of the entries that survived parameter rebinds and were
    /// carried over instead of re-executed. Zero on cold builds.
    pub survived_flops: u64,
    /// Previously cached entries the rebinds invalidated (and this build
    /// therefore re-executed). Zero on cold builds.
    pub entries_invalidated: u64,
    /// Parameter-slot updates absorbed by this build. Zero on cold builds.
    pub params_rebound: u64,
}

impl BranchCache {
    /// The cached tensor of a tree node, if this node is a kept branch root.
    pub fn tensor(&self, node: usize) -> Option<&DenseTensor<Complex64>> {
        self.tensors.get(&node)
    }

    /// The `(flops, contractions)` attributed to producing a kept root's
    /// subtree, if this node is a kept branch root.
    pub fn entry_cost(&self, node: usize) -> Option<(u64, u64)> {
        self.entry_costs.get(&node).copied()
    }

    /// Number of cached tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True if the cache holds no tensors (fully sliced/overridden trees).
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }
}

/// Branch-cache entries surviving a parameter rebind, staged on the plan
/// clone [`crate::CompiledCircuit::rebind_parameters`] produces and
/// consumed by that plan's next branch-cache build: the build
/// replays only the subtrees of the invalidated cone and installs the
/// surviving tensors verbatim, with their original cost attribution.
#[derive(Debug, Clone, Default)]
pub struct BranchSeed {
    /// Surviving kept entries: tree-node id → (tensor, flops, contractions).
    pub(crate) surviving: HashMap<usize, (DenseTensor<Complex64>, u64, u64)>,
    /// Previously cached entries the rebinds' cones dropped, accumulated
    /// across rebinds stacked before the next execution.
    pub(crate) entries_invalidated: u64,
    /// Parameter-slot updates applied since the last cache build.
    pub(crate) params_rebound: u64,
}

/// The per-execution frontier: Frontier-class tensors (override-dependent,
/// slice-invariant), rebuilt once per execution from the current overrides.
struct Frontier {
    tensors: HashMap<usize, DenseTensor<Complex64>>,
    flops: u64,
    contractions: u64,
    gemm: GemmTally,
}

/// Fetch a contraction operand: an intermediate owned by `slots` (consumed,
/// as each internal node feeds exactly one parent) or a cached tensor
/// borrowed from `cached`.
fn take_operand<'a>(
    slots: &mut [Option<DenseTensor<Complex64>>],
    cached: &'a HashMap<usize, DenseTensor<Complex64>>,
    id: usize,
) -> Result<Cow<'a, DenseTensor<Complex64>>, Error> {
    if let Some(t) = slots[id].take() {
        return Ok(Cow::Owned(t));
    }
    cached
        .get(&id)
        .map(Cow::Borrowed)
        .ok_or_else(|| Error::Internal(format!("operand {id} missing from slots and cache")))
}

/// Map every Branch-class node to the kept root whose subtree owns it.
/// Each internal node feeds exactly one parent and the kept roots are the
/// maximal branch subtrees, so the ownership is a partition: walking down
/// from each kept root through the schedule's producer edges visits every
/// branch node exactly once.
fn branch_owners(cls: &qtn_tensornet::NodeClassification) -> HashMap<usize, usize> {
    let produced: HashMap<usize, (usize, usize)> =
        cls.branch_schedule().iter().map(|&(l, r, out)| (out, (l, r))).collect();
    let mut owner = HashMap::new();
    for &root in cls.branch_keep() {
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            owner.insert(node, root);
            if let Some(&(l, r)) = produced.get(&node) {
                stack.push(l);
                stack.push(r);
            }
        }
    }
    owner
}

/// Contract every Branch-class node bottom-up and keep the branch roots.
/// Runs once per plan; the tensors depend only on the circuit, so the same
/// worker-order-independent pairwise contractions make the cache — and with
/// it every later result — bit-identical to a full replay.
///
/// When the plan carries a [`BranchSeed`] (a parameter rebind staged
/// surviving entries on it), only the subtrees of the invalidated cone are
/// replayed: surviving kept tensors install verbatim, their leaves and
/// contractions are skipped, and the cache's accounting splits the cold
/// bill into executed and survived shares so the flop identity
/// `survived + executed == cold` is exact.
fn build_branch_cache(plan: &SimulationPlan) -> Result<BranchCache, Error> {
    let cls = &plan.classification;
    let owner = branch_owners(cls);
    let seed = plan.branch_seed.as_deref();
    let survives = |root: usize| seed.is_some_and(|s| s.surviving.contains_key(&root));

    let mut slots: Vec<Option<DenseTensor<Complex64>>> = vec![None; plan.tree.nodes().len()];
    for (node_id, node) in plan.tree.nodes().iter().enumerate() {
        if let Some(vertex) = node.leaf_vertex {
            if cls.class(node_id) == NodeClass::Branch
                && owner.get(&node_id).is_some_and(|&root| !survives(root))
            {
                slots[node_id] = Some(plan.build.nodes[vertex].data.clone());
            }
        }
    }
    let mut flops = 0u64;
    let mut contractions = 0u64;
    let mut gemm = GemmTally::default();
    let mut step_costs: HashMap<usize, (u64, u64)> = HashMap::new();
    let empty = HashMap::new();
    for &(l, r, out) in cls.branch_schedule() {
        let root = *owner
            .get(&out)
            .ok_or_else(|| Error::Internal(format!("branch step {out} has no kept root")))?;
        if survives(root) {
            continue;
        }
        let a = take_operand(&mut slots, &empty, l)?;
        let b = take_operand(&mut slots, &empty, r)?;
        let spec = ContractionSpec::new(a.indices(), b.indices());
        flops += spec.flops();
        contractions += 1;
        let entry = step_costs.entry(root).or_insert((0, 0));
        entry.0 += spec.flops();
        entry.1 += 1;
        gemm.record_spec(&spec);
        slots[out] = Some(contract_pair(&a, &b));
    }
    let mut tensors = HashMap::with_capacity(cls.branch_keep().len());
    let mut entry_costs = HashMap::with_capacity(cls.branch_keep().len());
    let mut survived_flops = 0u64;
    for &id in cls.branch_keep() {
        if let Some((t, entry_flops, entry_contractions)) = seed.and_then(|s| s.surviving.get(&id))
        {
            tensors.insert(id, t.clone());
            entry_costs.insert(id, (*entry_flops, *entry_contractions));
            survived_flops += entry_flops;
            continue;
        }
        let t = slots[id]
            .take()
            .ok_or_else(|| Error::Internal(format!("branch root {id} was not produced")))?;
        tensors.insert(id, t);
        entry_costs.insert(id, step_costs.get(&id).copied().unwrap_or((0, 0)));
    }
    Ok(BranchCache {
        tensors,
        entry_costs,
        flops,
        contractions,
        gemm,
        cold_flops: flops + survived_flops,
        survived_flops,
        entries_invalidated: seed.map_or(0, |s| s.entries_invalidated),
        params_rebound: seed.map_or(0, |s| s.params_rebound),
    })
}

/// Contract every Frontier-class node bottom-up, substituting the execution's
/// leaf overrides, and keep the frontier roots. Runs once per execution.
fn build_frontier(
    plan: &SimulationPlan,
    cache: &BranchCache,
    overrides: &LeafOverrides,
) -> Result<Frontier, Error> {
    let cls = &plan.classification;
    let mut slots: Vec<Option<DenseTensor<Complex64>>> = vec![None; plan.tree.nodes().len()];
    for (node_id, node) in plan.tree.nodes().iter().enumerate() {
        if let Some(vertex) = node.leaf_vertex {
            if cls.class(node_id) == NodeClass::Frontier {
                slots[node_id] =
                    Some(overrides.get(&vertex).unwrap_or(&plan.build.nodes[vertex].data).clone());
            }
        }
    }
    let mut flops = 0u64;
    let mut contractions = 0u64;
    let mut gemm = GemmTally::default();
    for &(l, r, out) in cls.frontier_schedule() {
        let a = take_operand(&mut slots, &cache.tensors, l)?;
        let b = take_operand(&mut slots, &cache.tensors, r)?;
        let spec = ContractionSpec::new(a.indices(), b.indices());
        flops += spec.flops();
        contractions += 1;
        gemm.record_spec(&spec);
        slots[out] = Some(contract_pair(&a, &b));
    }
    let mut tensors = HashMap::with_capacity(cls.frontier_keep().len());
    for &id in cls.frontier_keep() {
        let t = slots[id]
            .take()
            .ok_or_else(|| Error::Internal(format!("frontier root {id} was not produced")))?;
        tensors.insert(id, t);
    }
    Ok(Frontier { tensors, flops, contractions, gemm })
}

// ---------------------------------------------------------------------------
// Pooled stem execution: precompiled per-subtask replay
// ---------------------------------------------------------------------------

/// One stem leaf's slicing recipe, precomputed once per execution: which
/// axes of the (possibly overridden) source tensor are fixed by which
/// sliced-edge bit. Applying it is a single [`DenseTensor::slice_into`]
/// gather into a pooled buffer — no clone, no per-edge re-slicing.
#[derive(Debug)]
struct StemLeafExec {
    /// Tree node this leaf occupies.
    node: usize,
    /// Network vertex the data comes from (override key).
    vertex: usize,
    /// `(axis position in the source tensor, bit position in the slicing
    /// set)` for every sliced edge the leaf carries.
    fixes: Vec<(usize, usize)>,
    /// Elements of the sliced leaf tensor.
    len: usize,
    /// Whether the leaf is StemMixed-class (an overridable projector that
    /// also carries a sliced edge): re-sliced per bitstring in a batched
    /// execution. StemPure leaves are sliced once per subtask.
    mixed: bool,
}

/// One stem contraction, fully compiled: operand/output tree nodes plus the
/// reusable [`ContractionKernel`] (spec + TTGT permutation maps). Shapes and
/// axis orders are identical across all `2^|S|` subtasks, so kernels are
/// built once per execution and replayed allocation-free.
#[derive(Debug)]
struct StemStepExec {
    left: usize,
    right: usize,
    out: usize,
    kernel: ContractionKernel,
    /// Whether the contraction is StemMixed-class (projector-dependent):
    /// replayed per bitstring in a batched execution, while StemPure steps
    /// (`mixed == false`) run once per subtask for the whole batch.
    mixed: bool,
}

/// The compiled form of the per-subtask stem replay: slicing recipes for
/// the stem leaves, contraction kernels for the stem schedule, and the
/// index sets of every stem-node tensor (needed to wrap the root buffer).
/// Compiled once in the plan's lifetime (it only depends on index sets,
/// which [`qtn_circuit::NetworkBuild::rebind_output`] overrides preserve)
/// and memoized on the [`SimulationPlan`] like the branch cache; shared
/// read-only by all workers. Overrides that *do* change a leaf's axis
/// order get a fresh, uncached compile instead.
#[derive(Debug)]
pub(crate) struct StemExec {
    leaves: Vec<StemLeafExec>,
    steps: Vec<StemStepExec>,
    /// Index set of each Stem-class node's tensor, by tree-node id.
    node_indices: Vec<Option<IndexSet>>,
    /// Whether the tree root is Stem-class (a sliced sweep). When false the
    /// pooled replay is bypassed — the subtask result is a cached tensor.
    root_is_stem: bool,
}

/// Resolve a slice-invariant tensor: a per-execution frontier seed or a
/// plan-lifetime branch-cache entry. The single lookup chain shared by the
/// stem compile, the pooled replay and the unpooled replay.
fn cached_tensor<'a>(
    seeds: &'a HashMap<usize, DenseTensor<Complex64>>,
    cache: &'a BranchCache,
    id: usize,
) -> Option<&'a DenseTensor<Complex64>> {
    seeds.get(&id).or_else(|| cache.tensor(id))
}

/// Index set of a stem operand: a stem node's precomputed set, or the axis
/// order of the cached tensor (frontier seed or branch cache) it is read
/// from.
fn operand_indices<'a>(
    node_indices: &'a [Option<IndexSet>],
    seeds: &'a HashMap<usize, DenseTensor<Complex64>>,
    cache: &'a BranchCache,
    id: usize,
) -> Result<&'a IndexSet, Error> {
    if let Some(idx) = node_indices[id].as_ref() {
        return Ok(idx);
    }
    cached_tensor(seeds, cache, id)
        .map(DenseTensor::indices)
        .ok_or_else(|| Error::Internal(format!("operand {id} missing while compiling stem")))
}

/// Compile the stem replay: resolve every stem leaf's slicing recipe and
/// build one [`ContractionKernel`] per stem contraction. Pure shape work —
/// no amplitude is touched — and run once per execution.
fn build_stem_exec(
    plan: &SimulationPlan,
    cache: &BranchCache,
    seeds: &HashMap<usize, DenseTensor<Complex64>>,
    overrides: &LeafOverrides,
) -> Result<StemExec, Error> {
    let cls = &plan.classification;
    let sliced = &plan.slicing.sliced;
    let num_nodes = plan.tree.nodes().len();
    let root_is_stem = cls.class(plan.tree.root()).is_stem();
    let mut node_indices: Vec<Option<IndexSet>> = vec![None; num_nodes];
    let mut leaves = Vec::new();
    let mut steps = Vec::with_capacity(cls.stem_schedule().len());
    if !root_is_stem {
        return Ok(StemExec { leaves, steps, node_indices, root_is_stem });
    }

    for (node_id, node) in plan.tree.nodes().iter().enumerate() {
        if !cls.class(node_id).is_stem() {
            continue;
        }
        if let Some(vertex) = node.leaf_vertex {
            let src = overrides.get(&vertex).unwrap_or(&plan.build.nodes[vertex].data);
            let mut fixes = Vec::new();
            for (bit_pos, &edge) in sliced.iter().enumerate() {
                if let Some(axis) = src.indices().position(edge) {
                    fixes.push((axis, bit_pos));
                }
            }
            let kept: Vec<IndexId> = src.indices().iter().filter(|a| !sliced.contains(a)).collect();
            let indices = IndexSet::new(kept);
            leaves.push(StemLeafExec {
                node: node_id,
                vertex,
                fixes,
                len: indices.len(),
                mixed: cls.class(node_id) == NodeClass::StemMixed,
            });
            node_indices[node_id] = Some(indices);
        }
    }

    for &(l, r, out) in cls.stem_schedule() {
        let kernel = ContractionKernel::new(
            operand_indices(&node_indices, seeds, cache, l)?,
            operand_indices(&node_indices, seeds, cache, r)?,
        );
        node_indices[out] = Some(kernel.output().clone());
        steps.push(StemStepExec {
            left: l,
            right: r,
            out,
            kernel,
            mixed: cls.class(out) == NodeClass::StemMixed,
        });
    }
    Ok(StemExec { leaves, steps, node_indices, root_is_stem })
}

/// Per-worker state that survives the whole sweep: the worker's buffer
/// pool and its per-execution counters, the slot table and the reusable
/// fix buffer (cleared, never reallocated, between subtasks), and the root
/// index set recycled from the previous subtask's result tensor.
struct StemWorkspace {
    pool: BufferPool,
    counters: PoolCounters,
    slots: Vec<Option<Vec<Complex64>>>,
    fix_buf: Vec<(usize, u8)>,
    root_indices: Option<IndexSet>,
}

impl StemWorkspace {
    fn new(num_nodes: usize, pool: BufferPool) -> Self {
        Self {
            pool,
            counters: PoolCounters::default(),
            slots: vec![None; num_nodes],
            fix_buf: Vec::new(),
            root_indices: None,
        }
    }
}

/// Data slice of a stem operand: the owned pooled buffer taken from the
/// slot table, or a borrowed cache tensor's amplitudes.
fn stem_operand_data<'a>(
    owned: &'a Option<Vec<Complex64>>,
    seeds: &'a HashMap<usize, DenseTensor<Complex64>>,
    cache: &'a BranchCache,
    id: usize,
) -> Result<&'a [Complex64], Error> {
    if let Some(buf) = owned.as_deref() {
        return Ok(buf);
    }
    cached_tensor(seeds, cache, id)
        .map(DenseTensor::data)
        .ok_or_else(|| Error::Internal(format!("operand {id} missing from slots and caches")))
}

/// Execute one slice assignment on the worker's buffer pool: every sliced
/// leaf is gathered into a recycled buffer, every contraction runs through
/// its precompiled kernel into recycled output/scratch buffers, and buffers
/// return to the pool the moment their statically known lifetime ends. The
/// acquire/release sequence mirrors [`qtn_tensornet::lifetime`]'s phase
/// simulation step for step, which is why the plan's predicted peak and
/// slot counts are exact. Bit-identical to [`run_subtask_stem`].
///
/// Returns the root tensor (whose data buffer the caller must release back
/// to the pool after merging) and the replayed flop count, split as
/// `(root, total_flops, pure_flops)`.
fn run_subtask_stem_pooled(
    plan: &SimulationPlan,
    exec: &StemExec,
    seeds: &HashMap<usize, DenseTensor<Complex64>>,
    overrides: &LeafOverrides,
    assignment: usize,
    ws: &mut StemWorkspace,
    gemm: &mut GemmTally,
) -> Result<(DenseTensor<Complex64>, u64, u64), Error> {
    let cache = cache_of(plan)?;
    let StemWorkspace { pool, counters, slots, fix_buf, root_indices } = ws;
    let mut flops = 0u64;
    let mut pure_flops = 0u64;

    // Materialise the stem leaves: one strided gather per leaf, straight
    // from the (overridden) source tensor into a pooled buffer.
    for leaf in &exec.leaves {
        let src = overrides.get(&leaf.vertex).unwrap_or(&plan.build.nodes[leaf.vertex].data);
        fix_buf.clear();
        fix_buf.extend(
            leaf.fixes.iter().map(|&(axis, bit_pos)| (axis, ((assignment >> bit_pos) & 1) as u8)),
        );
        let mut buf = pool.acquire(leaf.len, counters);
        src.slice_into(fix_buf, &mut buf);
        slots[leaf.node] = Some(buf);
    }

    // Replay the stem schedule through the precompiled kernels.
    for step in &exec.steps {
        fault_contraction_tick();
        let left_owned = slots[step.left].take();
        let right_owned = slots[step.right].take();
        let left = stem_operand_data(&left_owned, seeds, cache, step.left)?;
        let right = stem_operand_data(&right_owned, seeds, cache, step.right)?;
        let mut left_scratch = pool.acquire(left.len(), counters);
        let mut right_scratch = pool.acquire(right.len(), counters);
        let mut out = pool.acquire(step.kernel.output().len(), counters);
        step.kernel.contract_into(left, right, &mut left_scratch, &mut right_scratch, &mut out);
        flops += step.kernel.flops();
        gemm.record_kernel(&step.kernel);
        if !step.mixed {
            pure_flops += step.kernel.flops();
        }
        pool.release(left_scratch, counters);
        pool.release(right_scratch, counters);
        if let Some(buf) = left_owned {
            pool.release(buf, counters);
        }
        if let Some(buf) = right_owned {
            pool.release(buf, counters);
        }
        slots[step.out] = Some(out);
    }

    let root = plan.tree.root();
    let buf = slots[root]
        .take()
        .ok_or_else(|| Error::Internal("root tensor missing after pooled replay".into()))?;
    // Recycle the previous subtask's root index set instead of cloning the
    // compiled one: the steady-state loop allocates nothing at all.
    let indices = match root_indices.take() {
        Some(indices) => indices,
        None => exec.node_indices[root]
            .clone()
            .ok_or_else(|| Error::Internal("root index set missing from stem compile".into()))?,
    };
    Ok((DenseTensor::from_data(indices, buf), flops, pure_flops))
}

/// Chaos hook: the [`FaultPoint::WorkerPanic`] injection point, checked
/// once per contraction step of every stem replay loop so a fault plan can
/// panic a worker at exactly the Nth contraction. One relaxed atomic load
/// when no plan is installed.
#[inline]
fn fault_contraction_tick() {
    if fault::fire(FaultPoint::WorkerPanic) {
        panic!("injected fault: worker panic at contraction step");
    }
}

/// The plan's built branch cache (pooled replay runs strictly after
/// [`prepare_reuse`] built it).
fn cache_of(plan: &SimulationPlan) -> Result<&BranchCache, Error> {
    plan.branch_cache
        .get()
        .and_then(|r| r.as_ref().ok())
        .ok_or_else(|| Error::Internal("branch cache missing during stem replay".into()))
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads.
///
/// Threads are spawned once and block on a shared queue; submitting a job
/// costs one channel send instead of a thread spawn. Dropping the pool closes
/// the queue and joins every worker.
pub struct WorkerPool {
    sender: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.handles.len()).finish()
    }
}

impl WorkerPool {
    /// Spawn a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || loop {
                    // Take the next job while holding the lock, run it after
                    // releasing so other workers can dequeue concurrently.
                    // The receiver stays usable even if a sibling worker
                    // panicked while holding the lock (`recv` itself cannot
                    // unwind, but the uniform policy costs nothing here).
                    let job = lock_unpoisoned(&receiver).recv();
                    match job {
                        // A panicking job must not take the worker thread
                        // down with it — the pool is long-lived and shared.
                        // The panicked execution observes the failure through
                        // its dropped result channel.
                        Ok(job) => {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                        Err(_) => break, // queue closed: pool is shutting down
                    }
                })
            })
            .collect();
        Self { sender: Some(sender), handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Enqueue a job. Jobs run in submission order as workers become free.
    pub fn submit(&self, job: Job) {
        self.sender
            .as_ref()
            .expect("worker pool already shut down")
            .send(job)
            .expect("worker pool threads terminated");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // close the queue, workers drain and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide pool backing the plain [`execute_plan`] /
/// [`try_execute_plan`] entry points. Engines own their own pools; this one
/// exists so the free functions stop paying a thread-spawn per execution.
fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        WorkerPool::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
    })
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Execute a plan, returning the contracted tensor (a scalar amplitude for
/// closed networks, a tensor over the open indices otherwise) and statistics.
///
/// Back-compat convenience over [`try_execute_plan`]; panics on internal
/// executor errors (which indicate planner/executor bugs, not bad input).
pub fn execute_plan(
    plan: &SimulationPlan,
    config: &ExecutorConfig,
) -> (DenseTensor<Complex64>, ExecutionStats) {
    try_execute_plan(plan, config).expect("plan execution failed")
}

/// Execute a plan on the process-wide worker pool.
///
/// The internal plan clone shares the caller's plan-lifetime branch cache,
/// so repeated calls with the same plan build the cache once and reuse it
/// afterwards, exactly like the [`crate::Engine`] path.
pub fn try_execute_plan(
    plan: &SimulationPlan,
    config: &ExecutorConfig,
) -> Result<(DenseTensor<Complex64>, ExecutionStats), Error> {
    let plan = Arc::new(plan.clone());
    execute_on_pool(global_pool(), &plan, &Arc::new(LeafOverrides::new()), config)
}

/// Accounting of the cache phases of one reusing execution.
struct ReuseState {
    /// Frontier-origin cached inputs to the per-subtask stem replay, keyed
    /// by tree-node id. Branch-origin inputs are *not* copied here — workers
    /// read them straight from the plan's [`BranchCache`] through their
    /// `Arc<SimulationPlan>`, so no branch tensor is cloned per execution.
    seeds: Arc<HashMap<usize, DenseTensor<Complex64>>>,
    /// Compiled stem replay (slicing recipes + contraction kernels), built
    /// only when pooled execution is on.
    stem_exec: Option<Arc<StemExec>>,
    /// Full branch-cache build cost (paid once in the plan's lifetime;
    /// after a parameter rebind this is still the *cold* bill — executed
    /// plus survived — so reuse accounting prices replays consistently).
    branch_flops_total: u64,
    /// Branch flops/contractions actually executed by *this* call.
    branch_flops: u64,
    branch_contractions: u64,
    /// Frontier flops/contractions executed by this call.
    frontier_flops: u64,
    frontier_contractions: u64,
    /// Rebind accounting of the branch-cache build, reported (like
    /// `branch_flops`) only by the call that ran the build.
    params_rebound: u64,
    entries_invalidated: u64,
    survived_flops: u64,
    /// Kernel-dispatch tally of the branch build executed by *this* call
    /// (zero unless this execution built the cache).
    branch_gemm: GemmTally,
    /// Kernel-dispatch tally of this execution's frontier build.
    frontier_gemm: GemmTally,
}

/// Build the branch cache (first execution only) and this execution's
/// frontier, assemble the seed tensors for the per-subtask stem replay, and
/// — when `pooled` — compile the stem replay's kernels and slicing recipes.
fn prepare_reuse(
    plan: &SimulationPlan,
    overrides: &LeafOverrides,
    pooled: bool,
) -> Result<ReuseState, Error> {
    // Lazily build the plan-lifetime branch cache. `OnceLock::get_or_init`
    // blocks concurrent initializers, so even racing first executions run
    // the (potentially dominant-cost) build exactly once — the thread that
    // runs the closure is the one that accounts for the branch work.
    let mut built_here = false;
    let cache = plan
        .branch_cache
        .get_or_init(|| {
            built_here = true;
            build_branch_cache(plan)
        })
        .as_ref()
        .map_err(Clone::clone)?;

    let mut frontier = build_frontier(plan, cache, overrides)?;
    let mut seeds = HashMap::with_capacity(plan.classification.frontier_keep().len());
    for &id in plan.classification.stem_seeds() {
        match frontier.tensors.remove(&id) {
            Some(t) => {
                seeds.insert(id, t);
            }
            // Branch-origin seeds stay in the plan's cache; just check they
            // are there so workers cannot hit a missing operand mid-sweep.
            None if cache.tensor(id).is_some() => {}
            None => return Err(Error::Internal(format!("stem seed {id} missing"))),
        }
    }
    let stem_exec = if pooled {
        // Rebinding preserves every leaf's index set, so the compiled stem
        // is plan-invariant and memoized on the plan; an override that
        // *changes* a leaf's axis order gets a fresh, uncached compile.
        let shapes_preserved = overrides
            .iter()
            .all(|(vertex, t)| t.indices() == plan.build.nodes[*vertex].data.indices());
        if shapes_preserved {
            let exec = plan
                .stem_exec
                .get_or_init(|| build_stem_exec(plan, cache, &seeds, overrides).map(Arc::new))
                .as_ref()
                .map_err(Clone::clone)?;
            Some(Arc::clone(exec))
        } else {
            Some(Arc::new(build_stem_exec(plan, cache, &seeds, overrides)?))
        }
    } else {
        None
    };
    Ok(ReuseState {
        seeds: Arc::new(seeds),
        stem_exec,
        branch_flops_total: cache.cold_flops,
        branch_flops: if built_here { cache.flops } else { 0 },
        branch_contractions: if built_here { cache.contractions } else { 0 },
        frontier_flops: frontier.flops,
        frontier_contractions: frontier.contractions,
        params_rebound: if built_here { cache.params_rebound } else { 0 },
        entries_invalidated: if built_here { cache.entries_invalidated } else { 0 },
        survived_flops: if built_here { cache.survived_flops } else { 0 },
        branch_gemm: if built_here { cache.gemm } else { GemmTally::default() },
        frontier_gemm: frontier.gemm,
    })
}

/// Execute a plan on an explicit [`WorkerPool`], substituting `overrides`
/// for the corresponding leaf tensors (the compile-once / execute-many path:
/// the overrides retarget output projectors without re-planning).
///
/// With [`ExecutorConfig::reuse`] enabled (the default), slice-invariant
/// contractions are not replayed per subtask: branch tensors come from the
/// plan-lifetime [`BranchCache`] and override-dependent frontier tensors are
/// contracted once per call, so each subtask replays only the stem. The
/// reuse path requires every override key to be one of the plan's
/// output-projector leaves (true for everything produced by
/// [`qtn_circuit::NetworkBuild::rebind_output`]); otherwise the executor
/// silently falls back to the full replay.
///
/// Deterministic: subtasks are statically strided over `config.workers`
/// logical workers and partials are reduced in worker order, so the result
/// is bit-identical across runs regardless of thread scheduling — and
/// bit-identical between the reuse and full-replay paths.
pub fn execute_on_pool(
    pool: &WorkerPool,
    plan: &Arc<SimulationPlan>,
    overrides: &Arc<LeafOverrides>,
    config: &ExecutorConfig,
) -> Result<(DenseTensor<Complex64>, ExecutionStats), Error> {
    let open = plan.network.open_indices();
    let sliced = plan.slicing.sliced.clone();
    let sliced_open: Vec<IndexId> = sliced.iter().copied().filter(|e| open.contains(e)).collect();

    let total_subtasks = 1usize << sliced.len();
    let run_subtasks = if config.max_subtasks == 0 {
        total_subtasks
    } else {
        config.max_subtasks.min(total_subtasks)
    };
    let workers = config.workers.max(1).min(run_subtasks.max(1));

    // Output accumulator over the open indices (sorted for a canonical
    // axis order; callers permute to their preferred order).
    let output_indices: qtn_tensor::IndexSet = {
        let mut root = plan.tree.node(plan.tree.root()).indices.clone();
        root.sort_unstable();
        root.into_iter().collect()
    };

    let start = Instant::now();

    // The classification assumed only output-projector leaves are
    // overridable; an override targeting any other leaf would make cached
    // branch tensors stale, so such calls take the full-replay path.
    let reuse = config.reuse
        && overrides
            .keys()
            .all(|v| plan.build.projector_leaves.iter().any(|&(_, node)| node == *v));
    let pooled = reuse && config.pool;
    let reuse_state = if reuse { Some(prepare_reuse(plan, overrides, pooled)?) } else { None };

    // Per-subtask timing starts after the serial cache phases so
    // `seconds_per_subtask` prices a subtask of the parallel sweep, not an
    // amortized share of the one-off builds.
    let sweep_start = Instant::now();

    type WorkerOutcome = (DenseTensor<Complex64>, u64, u64, GemmTally, PoolCounters);
    let (tx, rx) = mpsc::channel::<(usize, Result<WorkerOutcome, Error>)>();
    for worker in 0..workers {
        let tx = tx.clone();
        let plan = Arc::clone(plan);
        let overrides = Arc::clone(overrides);
        let seeds = reuse_state.as_ref().map(|s| Arc::clone(&s.seeds));
        let stem_exec = reuse_state
            .as_ref()
            .and_then(|s| s.stem_exec.as_ref())
            .filter(|e| e.root_is_stem)
            .map(Arc::clone);
        let sliced = sliced.clone();
        let sliced_open = sliced_open.clone();
        let output_indices = output_indices.clone();
        pool.submit(Box::new(move || {
            // The worker's buffer pool persists on the plan across
            // executions (checked back in below, on success *and* error,
            // so a failed execution never cools the pool), so only the
            // very first execution of a plan pays any allocation at all.
            let mut ws = stem_exec.as_ref().map(|_| {
                StemWorkspace::new(plan.tree.nodes().len(), plan.stem_pools.checkout(worker))
            });
            // A panicking subtask (injected or real) must fail only this
            // execution, never the process: the unwind is caught at the
            // job boundary and surfaces as a typed `ExecutionPanic`, and
            // the workspace checkin below still runs.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut partial = DenseTensor::<Complex64>::zeros(output_indices);
                let mut flops = 0u64;
                let mut pure_flops = 0u64;
                let mut gemm = GemmTally::default();
                // Static striding: worker w owns subtasks w, w+W, w+2W, …
                let mut assignment = worker;
                while assignment < run_subtasks {
                    match (&stem_exec, &seeds) {
                        (Some(exec), Some(seeds)) => {
                            let ws = ws.as_mut().expect("workspace exists with stem_exec");
                            let (result, subtask_flops, subtask_pure) = run_subtask_stem_pooled(
                                &plan, exec, seeds, &overrides, assignment, ws, &mut gemm,
                            )?;
                            flops += subtask_flops;
                            pure_flops += subtask_pure;
                            merge_subtask(&mut partial, &result, &sliced_open, &sliced, assignment);
                            // The root tensor's buffer goes back to the
                            // pool; its index set is recycled by the next
                            // subtask of this worker.
                            let (indices, buf) = result.into_parts();
                            ws.pool.release(buf, &mut ws.counters);
                            ws.root_indices = Some(indices);
                        }
                        (None, Some(seeds)) => {
                            let (result, subtask_flops, subtask_pure) = run_subtask_stem(
                                &plan, seeds, &overrides, &sliced, assignment, &mut gemm,
                            )?;
                            flops += subtask_flops;
                            pure_flops += subtask_pure;
                            merge_subtask(&mut partial, &result, &sliced_open, &sliced, assignment);
                        }
                        (_, None) => {
                            let (result, subtask_flops) =
                                run_subtask(&plan, &overrides, &sliced, assignment, &mut gemm)?;
                            flops += subtask_flops;
                            merge_subtask(&mut partial, &result, &sliced_open, &sliced, assignment);
                        }
                    }
                    assignment += workers;
                }
                Ok((partial, flops, pure_flops, gemm))
            }))
            .unwrap_or_else(|payload| Err(Error::from_panic(payload)));
            // Return the pool regardless of the outcome: buffers still
            // sitting in the slot table of a failed replay are drained
            // back first, so even an error leaves the free lists warm.
            let mut counters = PoolCounters::default();
            if let Some(mut ws) = ws {
                for slot in ws.slots.iter_mut() {
                    if let Some(buf) = slot.take() {
                        ws.pool.release(buf, &mut ws.counters);
                    }
                }
                counters = ws.counters;
                plan.stem_pools.checkin(worker, ws.pool);
            }
            let _ = tx.send((
                worker,
                outcome.map(|(partial, flops, pure, gemm)| (partial, flops, pure, gemm, counters)),
            ));
        }));
    }
    drop(tx);

    // Collect every worker's partial, then reduce in worker order so the
    // summation order is schedule-independent.
    let mut partials: Vec<Option<WorkerOutcome>> = (0..workers).map(|_| None).collect();
    for _ in 0..workers {
        let (worker, outcome) = rx
            .recv()
            .map_err(|_| Error::ExecutionPanic("an execution job was dropped unfinished".into()))?;
        partials[worker] = Some(outcome?);
    }
    let mut partials = partials.into_iter();
    let (mut result, mut stem_flops, mut stem_pure_flops, mut gemm_tally, mut pool_counters) =
        partials
            .next()
            .flatten()
            .ok_or_else(|| Error::Internal("missing worker partial".into()))?;
    for slot in partials {
        let (partial, worker_flops, worker_pure, worker_gemm, worker_counters) =
            slot.ok_or_else(|| Error::Internal("missing worker partial".into()))?;
        result.accumulate(&partial);
        stem_flops += worker_flops;
        stem_pure_flops += worker_pure;
        gemm_tally.add(&worker_gemm);
        pool_counters.merge(&worker_counters);
    }
    let wall = start.elapsed().as_secs_f64();
    let sweep_wall = sweep_start.elapsed().as_secs_f64();

    // A full replay would pay the branch + frontier contractions again in
    // every subtask (branch tensors carry no sliced index, so their flop
    // counts are identical in both modes).
    let mut stats = ExecutionStats {
        subtasks_run: run_subtasks,
        subtasks_total: total_subtasks,
        flops: stem_flops,
        stem_flops,
        stem_pure_flops,
        amplitudes_in_batch: 1,
        buffers_allocated: pool_counters.allocated,
        buffers_reused: pool_counters.reused,
        peak_bytes_in_flight: pool_counters.peak_in_flight_bytes,
        predicted_peak_bytes: plan.memory_plan.stem.peak_bytes(),
        wall_seconds: wall,
        seconds_per_subtask: if run_subtasks > 0 {
            sweep_wall * workers as f64 / run_subtasks as f64
        } else {
            0.0
        },
        workers,
        ..ExecutionStats::default()
    };
    if let Some(state) = reuse_state {
        let per_subtask_extra = state.branch_flops_total + state.frontier_flops;
        stats.frontier_flops = state.frontier_flops;
        stats.branch_flops = state.branch_flops;
        stats.branch_contractions = state.branch_contractions;
        stats.frontier_contractions = state.frontier_contractions;
        stats.params_rebound = state.params_rebound;
        stats.branch_entries_invalidated = state.entries_invalidated;
        stats.branch_flops_survived_rebind = state.survived_flops;
        stats.stem_pure_contractions =
            plan.classification.stem_pure_schedule().len() as u64 * run_subtasks as u64;
        stats.stem_mixed_flops = stem_flops - stem_pure_flops;
        stats.stem_mixed_contractions =
            plan.classification.stem_mixed_schedule().len() as u64 * run_subtasks as u64;
        stats.flops = stem_flops + state.frontier_flops + state.branch_flops;
        stats.branch_flops_reused = per_subtask_extra
            .saturating_mul(run_subtasks as u64)
            .saturating_sub(state.frontier_flops)
            .saturating_sub(state.branch_flops);
        gemm_tally.add(&state.branch_gemm);
        gemm_tally.add(&state.frontier_gemm);
    }
    stats.apply_gemm(&gemm_tally);
    stats.simd_level = qtn_tensor::simd_level().as_str();
    Ok((result, stats))
}

// ---------------------------------------------------------------------------
// Batched multi-amplitude execution
// ---------------------------------------------------------------------------

/// One bitstring's frontier seeds: the slice-invariant tensors its stem
/// replay reads, keyed by tree-node id.
type SeedMap = Arc<HashMap<usize, DenseTensor<Complex64>>>;

/// Accounting of the cache phases of one batched execution: one
/// [`ReuseState`] worth of per-bitstring state plus the shared plan-level
/// caches.
struct BatchReuseState {
    /// Per-bitstring frontier seeds, index-aligned with the overrides batch.
    seeds: Vec<SeedMap>,
    /// Compiled stem replay shared by every bitstring (rebinding preserves
    /// every leaf's index set, so one compile serves the whole batch).
    stem_exec: Option<Arc<StemExec>>,
    branch_flops_total: u64,
    branch_flops: u64,
    branch_contractions: u64,
    /// Frontier work summed over the batch (each bitstring absorbs its own
    /// projectors once).
    frontier_flops: u64,
    frontier_contractions: u64,
    /// Rebind accounting of the branch-cache build (see [`ReuseState`]).
    params_rebound: u64,
    entries_invalidated: u64,
    survived_flops: u64,
    /// Kernel-dispatch tallies executed by this call (branch zero unless
    /// this call built the cache; frontier summed over the deduped batch).
    branch_gemm: GemmTally,
    frontier_gemm: GemmTally,
}

/// A dependent-bits deduplication key: the output bits a node's subtree
/// depends on, packed *compactly* — bit `j` of the key is the bitstring's
/// value at the `j`-th set ordinal of the node's dependency mask,
/// ascending. Two bitstrings with equal keys are indistinguishable to any
/// tensor whose subtree touches only the masked projectors. Nodes
/// depending on up to 128 projector ordinals pack into one `u128`; wider
/// dependency cones (wide-output circuits) spill into boxed words, so
/// dedup never degrades to per-bitstring rebuilds no matter how many
/// qubits the circuit measures.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum DepKey {
    Packed(u128),
    Wide(Box<[u128]>),
}

/// Pack one bitstring's dependent bits for a node. `ordinals` lists the
/// node's dependency-mask ordinals ascending (see
/// [`qtn_tensornet::DependencyMasks`]); `ordinal_bits[i]` is the
/// bitstring's value at projector ordinal `i`.
fn pack_dep_key(ordinals: &[usize], ordinal_bits: &[u8]) -> DepKey {
    if ordinals.len() <= 128 {
        let mut key = 0u128;
        for (j, &ord) in ordinals.iter().enumerate() {
            key |= ((ordinal_bits[ord] & 1) as u128) << j;
        }
        DepKey::Packed(key)
    } else {
        let mut words = vec![0u128; ordinals.len().div_ceil(128)];
        for (j, &ord) in ordinals.iter().enumerate() {
            words[j / 128] |= ((ordinal_bits[ord] & 1) as u128) << (j % 128);
        }
        DepKey::Wide(words.into_boxed_slice())
    }
}

/// One bitstring's values at every projector ordinal: `result[i]` is the
/// output bit of the qubit `plan.build.projector_leaves[i]` measures — the
/// ordinal order [`classify_nodes`](qtn_tensornet::classify_nodes) (and so
/// every dependency mask) is defined over.
fn ordinal_bits_of(plan: &SimulationPlan, bits: &[u8]) -> Vec<u8> {
    plan.build
        .projector_leaves
        .iter()
        .map(|&(q, _)| bits.get(q).copied().unwrap_or(0) & 1)
        .collect()
}

/// The dependency-mask ordinals of every tree node, ascending, from the
/// plan's classification.
fn node_ordinals_of(plan: &SimulationPlan) -> Vec<Vec<usize>> {
    let masks = plan.classification.projector_masks();
    (0..plan.tree.nodes().len()).map(|n| masks.ordinals(n).collect()).collect()
}

/// Precomputed keyed-dedup tables for the StemMixed suffix of one batched
/// execution, shared read-only by every worker. For each StemMixed node
/// (leaf or contraction output) every bitstring's dependent-bits key is
/// interned to a dense id, and the batch is sorted so bitstrings with equal
/// key prefixes are adjacent: the executor keeps a single-entry
/// (most-recent-key) cache per node, which on spine-shaped suffixes (nested
/// dependency masks, where the heavy mixed contractions live) recomputes
/// each node exactly once per distinct key it has in the batch.
struct MixedDedup {
    /// Bitstring indices in processing order: lexicographically sorted by
    /// the per-node key ids taken in mixed-schedule order, with submission
    /// order as the stable tie-break. Reordering within a subtask is safe —
    /// every bitstring accumulates into its own partial, and partials still
    /// merge subtasks in ascending-assignment order per worker, exactly
    /// like a loop of singles.
    order: Vec<usize>,
    /// Per tree node: each bitstring's interned key id (`None` for nodes
    /// outside the mixed suffix).
    key_ids: Vec<Option<Vec<u32>>>,
    /// Sum over StemMixed *contraction* nodes of the number of distinct
    /// keys in the batch — the per-subtask floor on mixed contractions, and
    /// exactly what the sorted single-entry cache achieves on spines.
    distinct_contraction_keys: u64,
}

/// One worker's StemMixed-suffix tally for a batched execution: what the
/// keyed cache executed and what it skipped. Executed + skipped always
/// equals `mixed schedule length × bitstrings × subtasks run` — the exact
/// mixed bill a loop of single executions pays.
#[derive(Debug, Default, Clone, Copy)]
struct MixedTally {
    flops: u64,
    contractions: u64,
    skipped_flops: u64,
    skipped_contractions: u64,
}

impl MixedTally {
    fn merge(&mut self, other: &MixedTally) {
        self.flops += other.flops;
        self.contractions += other.contractions;
        self.skipped_flops += other.skipped_flops;
        self.skipped_contractions += other.skipped_contractions;
    }
}

/// Build the [`MixedDedup`] tables for a batch on a plan whose root is
/// StemMixed.
fn build_mixed_dedup(plan: &SimulationPlan, bitstrings: &[Vec<u8>]) -> MixedDedup {
    let cls = &plan.classification;
    let batch = bitstrings.len();
    let num_nodes = plan.tree.nodes().len();
    let node_ordinals = node_ordinals_of(plan);
    let batch_ordinal_bits: Vec<Vec<u8>> =
        bitstrings.iter().map(|bits| ordinal_bits_of(plan, bits)).collect();

    let mut key_ids: Vec<Option<Vec<u32>>> = vec![None; num_nodes];
    let mut distinct: Vec<u32> = vec![0; num_nodes];
    for node in 0..num_nodes {
        if cls.class(node) != NodeClass::StemMixed {
            continue;
        }
        let mut interned: HashMap<DepKey, u32> = HashMap::new();
        let mut ids = Vec::with_capacity(batch);
        for ob in &batch_ordinal_bits {
            let key = pack_dep_key(&node_ordinals[node], ob);
            let next = interned.len() as u32;
            ids.push(*interned.entry(key).or_insert(next));
        }
        distinct[node] = interned.len() as u32;
        key_ids[node] = Some(ids);
    }

    let outs: Vec<usize> = cls.stem_mixed_schedule().iter().map(|&(_, _, out)| out).collect();
    let distinct_contraction_keys = outs.iter().map(|&o| distinct[o] as u64).sum();
    // Sort priority. Processing order never affects correctness (a node
    // recomputes exactly when its key differs from what its buffer holds,
    // children before parents), only how often the single-entry caches miss
    // — so group the batch around the nodes where a miss costs the most.
    //
    // Dependency masks form a *laminar* family (each is the union of its
    // children's), so arrange the distinct masks as a containment forest
    // and emit them in cost-weighted post-order: within a chain the
    // narrowest mask sorts first — then a wider mask's keys are refined by
    // the narrower one's groups, and since a wide key determines every
    // sub-key, **all** chain nodes simultaneously hit their distinct-key
    // floor. Disjoint subtrees inevitably fragment each other, so the
    // heavier subtree gets the outer (unfragmented) sort position.
    let masks = cls.projector_masks();
    let cost_of = |out: usize| -> u64 {
        let &(l, r, _) = cls
            .stem_mixed_schedule()
            .iter()
            .find(|&&(_, _, o)| o == out)
            .expect("out comes from the mixed schedule");
        let left = &plan.tree.node(l).indices;
        let right = &plan.tree.node(r).indices;
        let union = left.len() + right.iter().filter(|e| !left.contains(*e)).count();
        1u64 << union.min(60)
    };
    // Group schedule outs by identical mask, accumulating structural cost.
    let mut groups: Vec<(Vec<u64>, Vec<usize>, u64)> = Vec::new();
    for &out in &outs {
        let words = masks.mask(out).to_vec();
        match groups.iter_mut().find(|(w, _, _)| *w == words) {
            Some((_, members, cost)) => {
                members.push(out);
                *cost += cost_of(out);
            }
            None => groups.push((words, vec![out], cost_of(out))),
        }
    }
    let subset = |a: &[u64], b: &[u64]| a.iter().zip(b).all(|(x, y)| x & !y == 0);
    let popcount = |w: &[u64]| w.iter().map(|x| x.count_ones() as u64).sum::<u64>();
    // Minimal strict superset = laminar parent (supersets form a chain).
    let parent: Vec<Option<usize>> = (0..groups.len())
        .map(|i| {
            (0..groups.len())
                .filter(|&j| j != i && subset(&groups[i].0, &groups[j].0))
                .min_by_key(|&j| popcount(&groups[j].0))
        })
        .collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
    let mut forest_roots: Vec<usize> = Vec::new();
    for (i, p) in parent.iter().enumerate() {
        match p {
            Some(p) => children[*p].push(i),
            None => forest_roots.push(i),
        }
    }
    // Subtree weights, bottom-up (children have strictly smaller masks).
    let mut weight: Vec<u64> = groups.iter().map(|(_, _, c)| *c).collect();
    let mut by_pop: Vec<usize> = (0..groups.len()).collect();
    by_pop.sort_by_key(|&i| popcount(&groups[i].0));
    for &i in &by_pop {
        if let Some(p) = parent[i] {
            weight[p] = weight[p].saturating_add(weight[i]);
        }
    }
    // Cost-weighted post-order: heavier subtrees first, masks narrower
    // than their parent emitted before it.
    for list in children.iter_mut() {
        list.sort_by_key(|&i| std::cmp::Reverse(weight[i]));
    }
    forest_roots.sort_by_key(|&i| std::cmp::Reverse(weight[i]));
    let mut priority: Vec<usize> = Vec::new();
    let mut stack: Vec<(usize, bool)> = forest_roots.iter().rev().map(|&i| (i, false)).collect();
    while let Some((i, emitted)) = stack.pop() {
        if emitted {
            priority.extend(groups[i].1.iter().copied());
        } else {
            stack.push((i, true));
            stack.extend(children[i].iter().rev().map(|&c| (c, false)));
        }
    }
    let mut order: Vec<usize> = (0..batch).collect();
    order.sort_by(|&a, &b| {
        for &out in &priority {
            let ids = key_ids[out].as_ref().expect("mixed out has a key table");
            match ids[a].cmp(&ids[b]) {
                std::cmp::Ordering::Equal => continue,
                unequal => return unequal,
            }
        }
        a.cmp(&b)
    });
    MixedDedup { order, key_ids, distinct_contraction_keys }
}

/// Build every bitstring's frontier seeds for a batch, **deduplicating
/// shared subtrees**: a Frontier-class tensor depends only on the output
/// bits of the projector qubits inside its own subtree, so with a batch of
/// B bitstrings each frontier contraction has at most
/// `min(B, 2^|qubits in subtree|)` distinct values — usually far fewer than
/// B. Every frontier contraction is therefore performed once per *distinct
/// key* instead of once per bitstring; the per-bitstring seed maps then
/// clone the (small) keep-root tensors they select. Deduplication reuses
/// tensors computed by the exact same pairwise contractions a per-bitstring
/// build would run, so results stay bit-identical.
///
/// Returns the per-bitstring seed maps plus the executed frontier
/// `(flops, contractions, dispatch tally)`.
fn build_frontiers_batch(
    plan: &SimulationPlan,
    cache: &BranchCache,
    bitstrings: &[Vec<u8>],
    overrides_batch: &[Arc<LeafOverrides>],
) -> Result<(Vec<SeedMap>, u64, u64, GemmTally), Error> {
    let cls = &plan.classification;
    let num_nodes = plan.tree.nodes().len();

    // Dependency masks come from the classification (ordinal bitsets over
    // the projector leaves); compact packing means any cone width dedups —
    // wide-output circuits included, with no per-bitstring fallback.
    let node_ordinals = node_ordinals_of(plan);
    let batch_ordinal_bits: Vec<Vec<u8>> =
        bitstrings.iter().map(|bits| ordinal_bits_of(plan, bits)).collect();
    let key_of = |node: usize, b: usize| pack_dep_key(&node_ordinals[node], &batch_ordinal_bits[b]);

    // Per-node value tables keyed by the masked bits. Leaves read the
    // per-bitstring overrides; internal nodes contract once per distinct
    // key, in schedule order (children before parents, so child tables are
    // complete when the parent needs them).
    let mut values: Vec<HashMap<DepKey, DenseTensor<Complex64>>> = vec![HashMap::new(); num_nodes];
    for (node_id, node) in plan.tree.nodes().iter().enumerate() {
        if cls.class(node_id) != NodeClass::Frontier {
            continue;
        }
        if let Some(vertex) = node.leaf_vertex {
            for (b, overrides) in overrides_batch.iter().enumerate() {
                let key = key_of(node_id, b);
                values[node_id].entry(key).or_insert_with(|| {
                    overrides.get(&vertex).unwrap_or(&plan.build.nodes[vertex].data).clone()
                });
            }
        }
    }
    let mut flops = 0u64;
    let mut contractions = 0u64;
    let mut gemm = GemmTally::default();
    for &(l, r, out) in cls.frontier_schedule() {
        for b in 0..bitstrings.len() {
            let key = key_of(out, b);
            if values[out].contains_key(&key) {
                continue;
            }
            let left_key = key_of(l, b);
            let right_key = key_of(r, b);
            let (a, b): (&DenseTensor<Complex64>, &DenseTensor<Complex64>) =
                match (cls.class(l) == NodeClass::Frontier, cls.class(r) == NodeClass::Frontier) {
                    (true, true) => (&values[l][&left_key], &values[r][&right_key]),
                    (true, false) => (
                        &values[l][&left_key],
                        cache.tensor(r).ok_or_else(|| {
                            Error::Internal(format!("branch operand {r} missing from cache"))
                        })?,
                    ),
                    (false, true) => (
                        cache.tensor(l).ok_or_else(|| {
                            Error::Internal(format!("branch operand {l} missing from cache"))
                        })?,
                        &values[r][&right_key],
                    ),
                    (false, false) => {
                        return Err(Error::Internal(format!(
                            "frontier contraction {out} has no frontier operand"
                        )))
                    }
                };
            let spec = ContractionSpec::new(a.indices(), b.indices());
            flops += spec.flops();
            contractions += 1;
            gemm.record_spec(&spec);
            let result = contract_pair(a, b);
            values[out].insert(key, result);
        }
        // Children feed exactly one parent: their tables are dead now
        // unless they are keep roots the stem replay reads directly.
        for child in [l, r] {
            if !cls.stem_seeds().contains(&child) {
                values[child] = HashMap::new();
            }
        }
    }

    let mut seeds = Vec::with_capacity(bitstrings.len());
    for b in 0..bitstrings.len() {
        let mut map = HashMap::with_capacity(cls.frontier_keep().len());
        for &id in cls.stem_seeds() {
            if cls.class(id) == NodeClass::Frontier {
                let key = key_of(id, b);
                let t = values[id]
                    .get(&key)
                    .ok_or_else(|| Error::Internal(format!("frontier root {id} missing")))?;
                map.insert(id, t.clone());
            } else if cache.tensor(id).is_none() {
                return Err(Error::Internal(format!("stem seed {id} missing")));
            }
        }
        seeds.push(Arc::new(map));
    }
    Ok((seeds, flops, contractions, gemm))
}

/// Run the reuse preparation for a whole batch: the branch cache is built
/// (at most) once through the plan's `OnceLock`, the batched frontier
/// builder computes every bitstring's seeds with cross-bitstring subtree
/// deduplication, and the pooled stem compile is memoized exactly as
/// across executions.
fn prepare_reuse_batch(
    plan: &SimulationPlan,
    bitstrings: &[Vec<u8>],
    overrides_batch: &[Arc<LeafOverrides>],
    pooled: bool,
) -> Result<BatchReuseState, Error> {
    // Branch cache: same lazy plan-lifetime build as the single path.
    let mut built_here = false;
    let cache = plan
        .branch_cache
        .get_or_init(|| {
            built_here = true;
            build_branch_cache(plan)
        })
        .as_ref()
        .map_err(Clone::clone)?;

    let (seeds, frontier_flops, frontier_contractions, frontier_gemm) =
        build_frontiers_batch(plan, cache, bitstrings, overrides_batch)?;

    let stem_exec = if pooled {
        // Rebinding preserves every leaf's index set, so the compiled stem
        // is plan-invariant and memoized on the plan (see `prepare_reuse`).
        let exec = plan
            .stem_exec
            .get_or_init(|| {
                build_stem_exec(plan, cache, &seeds[0], &overrides_batch[0]).map(Arc::new)
            })
            .as_ref()
            .map_err(Clone::clone)?;
        Some(Arc::clone(exec))
    } else {
        None
    };
    Ok(BatchReuseState {
        seeds,
        stem_exec,
        branch_flops_total: cache.cold_flops,
        branch_flops: if built_here { cache.flops } else { 0 },
        branch_contractions: if built_here { cache.contractions } else { 0 },
        frontier_flops,
        frontier_contractions,
        params_rebound: if built_here { cache.params_rebound } else { 0 },
        entries_invalidated: if built_here { cache.entries_invalidated } else { 0 },
        survived_flops: if built_here { cache.survived_flops } else { 0 },
        branch_gemm: if built_here { cache.gemm } else { GemmTally::default() },
        frontier_gemm,
    })
}

/// Execute the StemPure prefix of one slice assignment on the worker's
/// buffer pool: pure leaves are gathered into pooled buffers, pure
/// contractions replay through their kernels, and buffers consumed by a
/// pure contraction are released immediately. What remains in the slot
/// table afterwards is exactly the classification's StemPure keep set
/// (plus the root when the whole stem is pure) — held there, still checked
/// out of the pool, for every bitstring of the batch to read. Returns the
/// replayed (pure) flop count.
fn run_pure_prefix_pooled(
    plan: &SimulationPlan,
    exec: &StemExec,
    assignment: usize,
    ws: &mut StemWorkspace,
    gemm: &mut GemmTally,
) -> Result<u64, Error> {
    let cache = cache_of(plan)?;
    let no_seeds = HashMap::new();
    let StemWorkspace { pool, counters, slots, fix_buf, .. } = ws;
    let mut flops = 0u64;

    // StemPure leaves carry a sliced edge but are never overridable, so
    // they always read the plan's own leaf data.
    for leaf in exec.leaves.iter().filter(|l| !l.mixed) {
        let src = &plan.build.nodes[leaf.vertex].data;
        fix_buf.clear();
        fix_buf.extend(
            leaf.fixes.iter().map(|&(axis, bit_pos)| (axis, ((assignment >> bit_pos) & 1) as u8)),
        );
        let mut buf = pool.acquire(leaf.len, counters);
        src.slice_into(fix_buf, &mut buf);
        slots[leaf.node] = Some(buf);
    }

    for step in exec.steps.iter().filter(|s| !s.mixed) {
        fault_contraction_tick();
        // A StemPure contraction's operands are StemPure (owned by the slot
        // table and consumed here — a pure node consumed by a *mixed* step
        // never shows up as a pure-step operand) or Branch (borrowed from
        // the plan cache).
        let left_owned = slots[step.left].take();
        let right_owned = slots[step.right].take();
        let left = stem_operand_data(&left_owned, &no_seeds, cache, step.left)?;
        let right = stem_operand_data(&right_owned, &no_seeds, cache, step.right)?;
        let mut left_scratch = pool.acquire(left.len(), counters);
        let mut right_scratch = pool.acquire(right.len(), counters);
        let mut out = pool.acquire(step.kernel.output().len(), counters);
        step.kernel.contract_into(left, right, &mut left_scratch, &mut right_scratch, &mut out);
        flops += step.kernel.flops();
        gemm.record_kernel(&step.kernel);
        pool.release(left_scratch, counters);
        pool.release(right_scratch, counters);
        if let Some(buf) = left_owned {
            pool.release(buf, counters);
        }
        if let Some(buf) = right_owned {
            pool.release(buf, counters);
        }
        slots[step.out] = Some(out);
    }
    Ok(flops)
}

/// Data slice of a keyed-suffix operand: a held buffer in the slot table
/// (a StemPure keep or a mixed node's held buffer — mixed children were
/// refreshed earlier in the same pass, children precede parents) or a
/// borrowed cache tensor (frontier seed / branch cache).
fn mixed_operand_data<'a>(
    slots: &'a [Option<Vec<Complex64>>],
    seeds: &'a HashMap<usize, DenseTensor<Complex64>>,
    cache: &'a BranchCache,
    id: usize,
) -> Result<&'a [Complex64], Error> {
    if let Some(buf) = slots[id].as_deref() {
        return Ok(buf);
    }
    cached_tensor(seeds, cache, id)
        .map(DenseTensor::data)
        .ok_or_else(|| Error::Internal(format!("operand {id} missing from slots and caches")))
}

/// Execute one bitstring's StemMixed suffix of one slice assignment on the
/// worker's buffer pool, *keyed*: the caller acquired every mixed node's
/// buffer up front and `cached` records the dependent-bits key each buffer
/// currently holds. A node whose key matches this bitstring's is skipped
/// outright; a changed key recomputes the buffer **in place** (the
/// contraction kernel overwrites its output, and leaves re-gather with
/// `slice_into`), so held buffers never cycle through the pool and only
/// the per-step TTGT scratch is transient. Because a node's dependency
/// mask contains its children's masks, a matching output key guarantees
/// both operands hold exactly the values a per-bitstring replay would
/// produce — skipping is bit-exact reuse, never approximation. StemPure
/// keeps are borrowed from the slot table; frontier seeds and branch-cache
/// tensors are borrowed as in the single-execution replay.
///
/// Returns `(executed flops, executed contractions, skipped flops)`. The
/// root's value stays in the slot table for the caller to merge.
#[allow(clippy::too_many_arguments)]
fn run_mixed_suffix_keyed_pooled(
    plan: &SimulationPlan,
    exec: &StemExec,
    key_ids: &[Option<Vec<u32>>],
    cached: &mut [Option<u32>],
    seeds: &HashMap<usize, DenseTensor<Complex64>>,
    overrides: &LeafOverrides,
    bitstring: usize,
    assignment: usize,
    ws: &mut StemWorkspace,
    gemm: &mut GemmTally,
) -> Result<(u64, u64, u64), Error> {
    let cache = cache_of(plan)?;
    let StemWorkspace { pool, counters, slots, fix_buf, .. } = ws;
    let mut flops = 0u64;
    let mut executed = 0u64;
    let mut skipped_flops = 0u64;

    for leaf in exec.leaves.iter().filter(|l| l.mixed) {
        let kid = key_ids[leaf.node].as_ref().expect("mixed leaf key table")[bitstring];
        if cached[leaf.node] == Some(kid) {
            continue;
        }
        let src = overrides.get(&leaf.vertex).unwrap_or(&plan.build.nodes[leaf.vertex].data);
        fix_buf.clear();
        fix_buf.extend(
            leaf.fixes.iter().map(|&(axis, bit_pos)| (axis, ((assignment >> bit_pos) & 1) as u8)),
        );
        let buf = slots[leaf.node]
            .as_mut()
            .ok_or_else(|| Error::Internal(format!("mixed leaf buffer {} not held", leaf.node)))?;
        src.slice_into(fix_buf, buf);
        cached[leaf.node] = Some(kid);
    }

    for step in exec.steps.iter().filter(|s| s.mixed) {
        let kid = key_ids[step.out].as_ref().expect("mixed step key table")[bitstring];
        if cached[step.out] == Some(kid) {
            skipped_flops += step.kernel.flops();
            continue;
        }
        fault_contraction_tick();
        let mut out = slots[step.out]
            .take()
            .ok_or_else(|| Error::Internal(format!("mixed output buffer {} not held", step.out)))?;
        let left = mixed_operand_data(slots, seeds, cache, step.left)?;
        let right = mixed_operand_data(slots, seeds, cache, step.right)?;
        let mut left_scratch = pool.acquire(left.len(), counters);
        let mut right_scratch = pool.acquire(right.len(), counters);
        step.kernel.contract_into(left, right, &mut left_scratch, &mut right_scratch, &mut out);
        flops += step.kernel.flops();
        executed += 1;
        gemm.record_kernel(&step.kernel);
        pool.release(left_scratch, counters);
        pool.release(right_scratch, counters);
        slots[step.out] = Some(out);
        cached[step.out] = Some(kid);
    }
    Ok((flops, executed, skipped_flops))
}

/// The slot table an unpooled StemPure prefix leaves behind: the StemPure
/// keep set (plus the root when the whole stem is pure), by tree-node id.
type PureSlots = Vec<Option<DenseTensor<Complex64>>>;

/// Unpooled StemPure prefix: materialise the pure leaves for one slice
/// assignment and replay the pure schedule with plain allocations. Returns
/// the slot table (whose remaining entries are the StemPure keep set, plus
/// the root when the whole stem is pure) and the pure flop count.
fn run_pure_prefix(
    plan: &SimulationPlan,
    sliced: &[IndexId],
    assignment: usize,
    gemm: &mut GemmTally,
) -> Result<(PureSlots, u64), Error> {
    let cls = &plan.classification;
    let cache = cache_of(plan)?;
    let no_seeds = HashMap::new();
    let no_overrides = LeafOverrides::new();
    let num_nodes = plan.tree.nodes().len();
    let mut slots: Vec<Option<DenseTensor<Complex64>>> = vec![None; num_nodes];
    let mut flops = 0u64;

    for (node_id, node) in plan.tree.nodes().iter().enumerate() {
        if cls.class(node_id) != NodeClass::StemPure {
            continue;
        }
        if let Some(vertex) = node.leaf_vertex {
            slots[node_id] =
                Some(sliced_leaf_tensor(plan, &no_overrides, sliced, assignment, vertex));
        }
    }

    for &(l, r, out) in cls.stem_pure_schedule() {
        let a = stem_operand(&mut slots, &no_seeds, cache, l)?;
        let b = stem_operand(&mut slots, &no_seeds, cache, r)?;
        let spec = ContractionSpec::new(a.indices(), b.indices());
        flops += spec.flops();
        gemm.record_spec(&spec);
        slots[out] = Some(contract_pair(&a, &b));
    }
    Ok((slots, flops))
}

/// Per-worker state of the unpooled keyed StemMixed suffix: the current
/// tensor, most-recent dependent-bits key and production cost of every
/// mixed node, persisted across the bitstring loop of one subtask (the key
/// cache is invalidated per subtask, so every subtask recomputes its first
/// bitstring from scratch just like the pooled path).
struct KeyedMixedSlots {
    tensors: Vec<Option<DenseTensor<Complex64>>>,
    cached: Vec<Option<u32>>,
    /// Flop cost of each mixed node's most recent contraction, charged to
    /// `stem_mixed_flops_reused` when a later bitstring skips the node.
    /// Contraction specs are shape-only, so the cost is bitstring-invariant.
    last_flops: Vec<u64>,
}

impl KeyedMixedSlots {
    fn new(num_nodes: usize) -> Self {
        KeyedMixedSlots {
            tensors: vec![None; num_nodes],
            cached: vec![None; num_nodes],
            last_flops: vec![0; num_nodes],
        }
    }
}

/// Fetch a keyed StemMixed-replay operand, borrowed: a mixed node's current
/// tensor (children are refreshed before parents within a pass), a StemPure
/// keep from this subtask's `pure_slots`, or a slice-invariant tensor from
/// the frontier seeds / branch cache.
fn keyed_operand<'a>(
    mixed: &'a [Option<DenseTensor<Complex64>>],
    pure_slots: &'a [Option<DenseTensor<Complex64>>],
    seeds: &'a HashMap<usize, DenseTensor<Complex64>>,
    cache: &'a BranchCache,
    id: usize,
) -> Result<&'a DenseTensor<Complex64>, Error> {
    if let Some(t) = mixed[id].as_ref() {
        return Ok(t);
    }
    if let Some(t) = pure_slots[id].as_ref() {
        return Ok(t);
    }
    cached_tensor(seeds, cache, id)
        .ok_or_else(|| Error::Internal(format!("operand {id} missing from slots and caches")))
}

/// Unpooled keyed StemMixed suffix for one bitstring of one slice
/// assignment: mixed leaves re-slice and mixed contractions replay **only
/// when the node's dependent-bits key differs from the one its tensor
/// already holds** — bitstrings arrive sorted by key (see
/// [`build_mixed_dedup`]), so each node recomputes once per distinct key it
/// sees. Slice-invariant or batch-shared operands are borrowed (frontier
/// seeds, branch cache, and the pure keep set produced by
/// [`run_pure_prefix`]). Returns `(executed flops, executed contractions,
/// skipped flops)`; the root tensor stays in `state` for the caller to
/// merge.
#[allow(clippy::too_many_arguments)]
fn run_mixed_suffix_keyed(
    plan: &SimulationPlan,
    pure_slots: &[Option<DenseTensor<Complex64>>],
    key_ids: &[Option<Vec<u32>>],
    state: &mut KeyedMixedSlots,
    seeds: &HashMap<usize, DenseTensor<Complex64>>,
    overrides: &LeafOverrides,
    sliced: &[IndexId],
    assignment: usize,
    bitstring: usize,
    gemm: &mut GemmTally,
) -> Result<(u64, u64, u64), Error> {
    let cls = &plan.classification;
    let cache = cache_of(plan)?;
    let mut flops = 0u64;
    let mut executed = 0u64;
    let mut skipped_flops = 0u64;

    for (node_id, node) in plan.tree.nodes().iter().enumerate() {
        if cls.class(node_id) != NodeClass::StemMixed {
            continue;
        }
        if let Some(vertex) = node.leaf_vertex {
            let kid = key_ids[node_id].as_ref().expect("mixed leaf key table")[bitstring];
            if state.cached[node_id] != Some(kid) {
                state.tensors[node_id] =
                    Some(sliced_leaf_tensor(plan, overrides, sliced, assignment, vertex));
                state.cached[node_id] = Some(kid);
            }
        }
    }

    for &(l, r, out) in cls.stem_mixed_schedule() {
        let kid = key_ids[out].as_ref().expect("mixed step key table")[bitstring];
        if state.cached[out] == Some(kid) {
            skipped_flops += state.last_flops[out];
            continue;
        }
        let a = keyed_operand(&state.tensors, pure_slots, seeds, cache, l)?;
        let b = keyed_operand(&state.tensors, pure_slots, seeds, cache, r)?;
        let spec = ContractionSpec::new(a.indices(), b.indices());
        flops += spec.flops();
        executed += 1;
        gemm.record_spec(&spec);
        let result = contract_pair(a, b);
        state.last_flops[out] = spec.flops();
        state.tensors[out] = Some(result);
        state.cached[out] = Some(kid);
    }
    Ok((flops, executed, skipped_flops))
}

/// Execute one plan for a whole batch of output bitstrings, amortizing the
/// slice-dependent StemPure prefix across the batch.
///
/// Each bitstring is rebound onto the plan's output projectors (see
/// [`qtn_circuit::NetworkBuild::rebind_output`]). With reuse enabled, every
/// slice assignment contracts its StemPure prefix **once** and replays only
/// the per-bitstring StemMixed suffix, and the per-bitstring frontiers are
/// built with cross-bitstring subtree deduplication — instead of the full
/// stem plus a fresh frontier once per bitstring. Results are
/// **bit-identical** to a loop of single [`execute_on_pool`] calls with the
/// same configuration — per bitstring the same pairwise contractions
/// produce every tensor and the partials reduce in the same worker order;
/// batching only changes how often shared work is computed. With reuse
/// disabled the call falls back to exactly that loop of single executions.
///
/// The returned tensors are index-aligned with `bitstrings`; the
/// [`ExecutionStats`] cover the whole batch, with
/// [`ExecutionStats::stem_pure_flops`],
/// [`ExecutionStats::stem_pure_flops_reused`] and
/// [`ExecutionStats::amplitudes_in_batch`] quantifying the amortization.
pub fn execute_amplitudes_on_pool(
    pool: &WorkerPool,
    plan: &Arc<SimulationPlan>,
    bitstrings: &[&[u8]],
    config: &ExecutorConfig,
) -> Result<(Vec<DenseTensor<Complex64>>, ExecutionStats), Error> {
    let batch = bitstrings.len();
    if batch == 0 {
        return Ok((
            Vec::new(),
            ExecutionStats {
                subtasks_total: plan.num_subtasks(),
                workers: 0,
                ..ExecutionStats::default()
            },
        ));
    }

    let bits_vec: Vec<Vec<u8>> = bitstrings.iter().map(|b| b.to_vec()).collect();
    let mut overrides_batch = Vec::with_capacity(batch);
    for bits in &bits_vec {
        let overrides: LeafOverrides = plan.build.rebind_output(bits)?.into_iter().collect();
        overrides_batch.push(Arc::new(overrides));
    }
    // A batch of one has nothing to amortize: delegate to the single-execute
    // path and skip the batch bookkeeping (seed maps, dedup tables, partial
    // accumulators) entirely. Identical results by construction — the batched
    // path is defined as bit-identical to this very loop of singles.
    if batch == 1 {
        let (result, mut stats) = execute_on_pool(pool, plan, &overrides_batch[0], config)?;
        stats.amplitudes_in_batch = 1;
        return Ok((vec![result], stats));
    }
    if !config.reuse {
        return execute_amplitudes_sequentially(pool, plan, &overrides_batch, config);
    }

    let open = plan.network.open_indices();
    let sliced = plan.slicing.sliced.clone();
    let sliced_open: Vec<IndexId> = sliced.iter().copied().filter(|e| open.contains(e)).collect();
    let total_subtasks = 1usize << sliced.len();
    let run_subtasks = if config.max_subtasks == 0 {
        total_subtasks
    } else {
        config.max_subtasks.min(total_subtasks)
    };
    let workers = config.workers.max(1).min(run_subtasks.max(1));
    let output_indices: IndexSet = {
        let mut root = plan.tree.node(plan.tree.root()).indices.clone();
        root.sort_unstable();
        root.into_iter().collect()
    };

    let start = Instant::now();
    let pooled = config.pool;
    let state = prepare_reuse_batch(plan, &bits_vec, &overrides_batch, pooled)?;
    let sweep_start = Instant::now();

    let seeds_all = Arc::new(state.seeds);
    let overrides_all: Arc<Vec<Arc<LeafOverrides>>> = Arc::new(overrides_batch);
    let stem_exec_shared = state.stem_exec.as_ref().filter(|e| e.root_is_stem).map(Arc::clone);
    let root_is_mixed = plan.classification.root_class() == NodeClass::StemMixed;
    let dedup = Arc::new(if root_is_mixed {
        build_mixed_dedup(plan, &bits_vec)
    } else {
        MixedDedup {
            order: (0..batch).collect(),
            key_ids: Vec::new(),
            distinct_contraction_keys: 0,
        }
    });
    let mixed_sched_len = plan.classification.stem_mixed_schedule().len() as u64;

    type BatchOutcome =
        (Vec<DenseTensor<Complex64>>, u64, u64, MixedTally, GemmTally, PoolCounters);
    let (tx, rx) = mpsc::channel::<(usize, Result<BatchOutcome, Error>)>();
    for worker in 0..workers {
        let tx = tx.clone();
        let plan = Arc::clone(plan);
        let seeds_all = Arc::clone(&seeds_all);
        let overrides_all = Arc::clone(&overrides_all);
        let stem_exec = stem_exec_shared.as_ref().map(Arc::clone);
        let dedup = Arc::clone(&dedup);
        let sliced = sliced.clone();
        let sliced_open = sliced_open.clone();
        let output_indices = output_indices.clone();
        pool.submit(Box::new(move || {
            let mut ws = stem_exec.as_ref().map(|_| {
                StemWorkspace::new(plan.tree.nodes().len(), plan.stem_pools.checkout(worker))
            });
            // Same panic containment as the single-amplitude sweep: a
            // panicking batched subtask becomes a typed `ExecutionPanic`
            // and the held buffers still drain back to the pool below.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let num_nodes = plan.tree.nodes().len();
                let mut partials: Vec<DenseTensor<Complex64>> =
                    (0..batch).map(|_| DenseTensor::zeros(output_indices.clone())).collect();
                let mut flops = 0u64;
                let mut pure_flops = 0u64;
                let mut mixed = MixedTally::default();
                let mut gemm = GemmTally::default();
                // Most-recent-key cache of the pooled keyed suffix,
                // invalidated per subtask (the first bitstring of every
                // subtask replays the full suffix, touching the peak).
                let mut cached_keys: Vec<Option<u32>> = vec![None; num_nodes];
                // Unpooled keyed suffix state, likewise reset per subtask.
                let mut keyed_state = KeyedMixedSlots::new(num_nodes);
                let root = plan.tree.root();
                // Static striding over slice assignments, exactly like the
                // single path: worker w owns subtasks w, w+W, w+2W, …
                let mut assignment = worker;
                while assignment < run_subtasks {
                    match &stem_exec {
                        // Pooled batched subtask: pure prefix once, then the
                        // keyed mixed suffix over the batch in dedup order.
                        Some(exec) => {
                            let ws = ws.as_mut().expect("workspace exists with stem_exec");
                            let p = run_pure_prefix_pooled(&plan, exec, assignment, ws, &mut gemm)?;
                            flops += p;
                            pure_flops += p;
                            if root_is_mixed {
                                // Acquire every mixed node's buffer up front
                                // (leaves, then step outputs — the lifetime
                                // simulation's exact sequence) and hold them
                                // across the whole bitstring loop: keyed
                                // recomputes overwrite in place, so the live
                                // set is constant and the first bitstring
                                // deterministically hits the predicted peak
                                // whatever keys the batch contains.
                                for leaf in exec.leaves.iter().filter(|l| l.mixed) {
                                    ws.slots[leaf.node] =
                                        Some(ws.pool.acquire(leaf.len, &mut ws.counters));
                                }
                                for step in exec.steps.iter().filter(|s| s.mixed) {
                                    ws.slots[step.out] = Some(
                                        ws.pool
                                            .acquire(step.kernel.output().len(), &mut ws.counters),
                                    );
                                }
                                cached_keys.fill(None);
                                for &b in dedup.order.iter() {
                                    let (m, executed, skipped) = run_mixed_suffix_keyed_pooled(
                                        &plan,
                                        exec,
                                        &dedup.key_ids,
                                        &mut cached_keys,
                                        &seeds_all[b],
                                        &overrides_all[b],
                                        b,
                                        assignment,
                                        ws,
                                        &mut gemm,
                                    )?;
                                    flops += m;
                                    mixed.flops += m;
                                    mixed.contractions += executed;
                                    mixed.skipped_flops += skipped;
                                    mixed.skipped_contractions += mixed_sched_len - executed;
                                    // Merge this bitstring's root: borrow the
                                    // held buffer as a tensor, then put it
                                    // back for the next bitstring to reuse.
                                    let buf = ws.slots[root].take().ok_or_else(|| {
                                        Error::Internal(
                                            "root tensor missing after mixed suffix".into(),
                                        )
                                    })?;
                                    let indices = match ws.root_indices.take() {
                                        Some(indices) => indices,
                                        None => {
                                            exec.node_indices[root].clone().ok_or_else(|| {
                                                Error::Internal(
                                                    "root index set missing from stem compile"
                                                        .into(),
                                                )
                                            })?
                                        }
                                    };
                                    let result = DenseTensor::from_data(indices, buf);
                                    merge_subtask(
                                        &mut partials[b],
                                        &result,
                                        &sliced_open,
                                        &sliced,
                                        assignment,
                                    );
                                    let (indices, buf) = result.into_parts();
                                    ws.slots[root] = Some(buf);
                                    ws.root_indices = Some(indices);
                                }
                            } else {
                                // The whole stem is StemPure: the prefix
                                // root *is* every bitstring's subtask
                                // result.
                                let buf = ws.slots[root].take().ok_or_else(|| {
                                    Error::Internal("root missing after pure prefix".into())
                                })?;
                                let indices = match ws.root_indices.take() {
                                    Some(indices) => indices,
                                    None => exec.node_indices[root].clone().ok_or_else(|| {
                                        Error::Internal("root index set missing".into())
                                    })?,
                                };
                                let result = DenseTensor::from_data(indices, buf);
                                for partial in partials.iter_mut() {
                                    merge_subtask(
                                        partial,
                                        &result,
                                        &sliced_open,
                                        &sliced,
                                        assignment,
                                    );
                                }
                                let (indices, buf) = result.into_parts();
                                ws.pool.release(buf, &mut ws.counters);
                                ws.root_indices = Some(indices);
                            }
                            // The batch is done with this subtask: the held
                            // StemPure keep set goes back to the pool.
                            for slot in ws.slots.iter_mut() {
                                if let Some(buf) = slot.take() {
                                    ws.pool.release(buf, &mut ws.counters);
                                }
                            }
                        }
                        // Unpooled (or slice-invariant) batched subtask.
                        None if plan.classification.root_class().is_stem() => {
                            let (pure_slots, p) =
                                run_pure_prefix(&plan, &sliced, assignment, &mut gemm)?;
                            flops += p;
                            pure_flops += p;
                            if root_is_mixed {
                                keyed_state.cached.fill(None);
                                for &b in dedup.order.iter() {
                                    let (m, executed, skipped) = run_mixed_suffix_keyed(
                                        &plan,
                                        &pure_slots,
                                        &dedup.key_ids,
                                        &mut keyed_state,
                                        &seeds_all[b],
                                        &overrides_all[b],
                                        &sliced,
                                        assignment,
                                        b,
                                        &mut gemm,
                                    )?;
                                    flops += m;
                                    mixed.flops += m;
                                    mixed.contractions += executed;
                                    mixed.skipped_flops += skipped;
                                    mixed.skipped_contractions += mixed_sched_len - executed;
                                    let result =
                                        keyed_state.tensors[root].as_ref().ok_or_else(|| {
                                            Error::Internal(
                                                "root tensor missing after mixed suffix".into(),
                                            )
                                        })?;
                                    merge_subtask(
                                        &mut partials[b],
                                        result,
                                        &sliced_open,
                                        &sliced,
                                        assignment,
                                    );
                                }
                            } else {
                                let result = pure_slots[root].as_ref().ok_or_else(|| {
                                    Error::Internal("root missing after pure prefix".into())
                                })?;
                                for partial in partials.iter_mut() {
                                    merge_subtask(
                                        partial,
                                        result,
                                        &sliced_open,
                                        &sliced,
                                        assignment,
                                    );
                                }
                            }
                        }
                        // No stem at all (unsliced plan): every bitstring's
                        // result is its cached frontier root.
                        None => {
                            let cache = cache_of(&plan)?;
                            for (b, partial) in partials.iter_mut().enumerate() {
                                let result =
                                    cached_tensor(&seeds_all[b], cache, root).ok_or_else(|| {
                                        Error::Internal(
                                            "slice-invariant root missing from caches".into(),
                                        )
                                    })?;
                                merge_subtask(partial, result, &sliced_open, &sliced, assignment);
                            }
                        }
                    }
                    assignment += workers;
                }
                Ok((partials, flops, pure_flops, mixed, gemm))
            }))
            .unwrap_or_else(|payload| Err(Error::from_panic(payload)));
            // Return the pool regardless of the outcome, draining any
            // buffers a failed replay left behind.
            let mut counters = PoolCounters::default();
            if let Some(mut ws) = ws {
                for slot in ws.slots.iter_mut() {
                    if let Some(buf) = slot.take() {
                        ws.pool.release(buf, &mut ws.counters);
                    }
                }
                counters = ws.counters;
                plan.stem_pools.checkin(worker, ws.pool);
            }
            let _ = tx.send((
                worker,
                outcome.map(|(partials, flops, pure, mixed, gemm)| {
                    (partials, flops, pure, mixed, gemm, counters)
                }),
            ));
        }));
    }
    drop(tx);

    // Collect every worker's per-bitstring partials, then reduce each
    // bitstring in worker order — the same schedule-independent summation
    // order a loop of single executions uses.
    let mut worker_partials: Vec<Option<BatchOutcome>> = (0..workers).map(|_| None).collect();
    for _ in 0..workers {
        let (worker, outcome) = rx
            .recv()
            .map_err(|_| Error::ExecutionPanic("an execution job was dropped unfinished".into()))?;
        worker_partials[worker] = Some(outcome?);
    }
    let mut worker_partials = worker_partials.into_iter();
    let (
        mut results,
        mut stem_flops,
        mut stem_pure_flops,
        mut mixed_tally,
        mut gemm_tally,
        mut pool_counters,
    ) = worker_partials
        .next()
        .flatten()
        .ok_or_else(|| Error::Internal("missing worker partial".into()))?;
    for slot in worker_partials {
        let (partials, worker_flops, worker_pure, worker_mixed, worker_gemm, worker_counters) =
            slot.ok_or_else(|| Error::Internal("missing worker partial".into()))?;
        for (acc, partial) in results.iter_mut().zip(partials.iter()) {
            acc.accumulate(partial);
        }
        stem_flops += worker_flops;
        stem_pure_flops += worker_pure;
        mixed_tally.merge(&worker_mixed);
        gemm_tally.add(&worker_gemm);
        pool_counters.merge(&worker_counters);
    }
    let wall = start.elapsed().as_secs_f64();
    let sweep_wall = sweep_start.elapsed().as_secs_f64();

    // A loop of single executions would replay the StemPure prefix once per
    // subtask *per bitstring*; the batch ran it once per subtask.
    let stem_pure_flops_reused = stem_pure_flops.saturating_mul(batch as u64 - 1);
    // And a full (reuse-off) replay would additionally pay branch work plus
    // one *undeduplicated* frontier build in every subtask of every
    // bitstring — the structural per-bitstring frontier bill, not the
    // (smaller) deduped total this call actually executed, so the batched
    // path and the sequential fallback account the same baseline.
    let frontier_flops_full: u64 = plan
        .classification
        .frontier_schedule()
        .iter()
        .map(|&(l, r, _)| {
            let left = &plan.tree.node(l).indices;
            let right = &plan.tree.node(r).indices;
            let union = left.len() + right.iter().filter(|e| !left.contains(*e)).count();
            8u64 << union
        })
        .sum();
    let branch_flops_reused = state
        .branch_flops_total
        .saturating_add(frontier_flops_full)
        .saturating_mul(batch as u64)
        .saturating_mul(run_subtasks as u64)
        .saturating_sub(state.frontier_flops)
        .saturating_sub(state.branch_flops);
    gemm_tally.add(&state.branch_gemm);
    gemm_tally.add(&state.frontier_gemm);
    let mut stats = ExecutionStats {
        subtasks_run: run_subtasks,
        subtasks_total: total_subtasks,
        flops: stem_flops + state.frontier_flops + state.branch_flops,
        stem_flops,
        stem_pure_flops,
        stem_pure_flops_reused,
        stem_pure_contractions: plan.classification.stem_pure_schedule().len() as u64
            * run_subtasks as u64,
        stem_mixed_flops: mixed_tally.flops,
        stem_mixed_flops_reused: mixed_tally.skipped_flops,
        stem_mixed_contractions: mixed_tally.contractions,
        stem_mixed_contractions_deduped: mixed_tally.skipped_contractions,
        stem_mixed_distinct_keys: dedup.distinct_contraction_keys,
        amplitudes_in_batch: batch as u64,
        frontier_flops: state.frontier_flops,
        branch_flops: state.branch_flops,
        branch_flops_reused,
        branch_contractions: state.branch_contractions,
        frontier_contractions: state.frontier_contractions,
        params_rebound: state.params_rebound,
        branch_entries_invalidated: state.entries_invalidated,
        branch_flops_survived_rebind: state.survived_flops,
        buffers_allocated: pool_counters.allocated,
        buffers_reused: pool_counters.reused,
        peak_bytes_in_flight: pool_counters.peak_in_flight_bytes,
        predicted_peak_bytes: plan.memory_plan.batched_stem.peak_bytes(),
        wall_seconds: wall,
        seconds_per_subtask: if run_subtasks > 0 {
            sweep_wall * workers as f64 / run_subtasks as f64
        } else {
            0.0
        },
        workers,
        ..ExecutionStats::default()
    };
    stats.apply_gemm(&gemm_tally);
    stats.simd_level = qtn_tensor::simd_level().as_str();
    Ok((results, stats))
}

/// The batched fallback: a plain loop of single executions, one per
/// bitstring — what [`execute_amplitudes_on_pool`] degrades to when reuse
/// is off or an override targets a non-projector leaf, and the baseline the
/// batched path is bit-identical to.
fn execute_amplitudes_sequentially(
    pool: &WorkerPool,
    plan: &Arc<SimulationPlan>,
    overrides_batch: &[Arc<LeafOverrides>],
    config: &ExecutorConfig,
) -> Result<(Vec<DenseTensor<Complex64>>, ExecutionStats), Error> {
    let start = Instant::now();
    let mut results = Vec::with_capacity(overrides_batch.len());
    let mut stats = ExecutionStats::default();
    for overrides in overrides_batch {
        let (result, s) = execute_on_pool(pool, plan, overrides, config)?;
        results.push(result);
        stats.subtasks_run += s.subtasks_run;
        stats.subtasks_total = s.subtasks_total;
        stats.flops += s.flops;
        stats.stem_flops += s.stem_flops;
        stats.stem_pure_flops += s.stem_pure_flops;
        stats.stem_pure_contractions += s.stem_pure_contractions;
        stats.stem_mixed_flops += s.stem_mixed_flops;
        stats.stem_mixed_flops_reused += s.stem_mixed_flops_reused;
        stats.stem_mixed_contractions += s.stem_mixed_contractions;
        stats.stem_mixed_contractions_deduped += s.stem_mixed_contractions_deduped;
        stats.stem_mixed_distinct_keys += s.stem_mixed_distinct_keys;
        stats.frontier_flops += s.frontier_flops;
        stats.branch_flops += s.branch_flops;
        stats.branch_flops_reused += s.branch_flops_reused;
        stats.branch_contractions += s.branch_contractions;
        stats.frontier_contractions += s.frontier_contractions;
        stats.params_rebound += s.params_rebound;
        stats.branch_entries_invalidated += s.branch_entries_invalidated;
        stats.branch_flops_survived_rebind += s.branch_flops_survived_rebind;
        stats.gemm_micro += s.gemm_micro;
        stats.gemm_gemv += s.gemm_gemv;
        stats.gemm_narrow += s.gemm_narrow;
        stats.gemm_blocked += s.gemm_blocked;
        stats.gemm_simd += s.gemm_simd;
        stats.simd_level = s.simd_level;
        stats.buffers_allocated += s.buffers_allocated;
        stats.buffers_reused += s.buffers_reused;
        stats.peak_bytes_in_flight = stats.peak_bytes_in_flight.max(s.peak_bytes_in_flight);
        stats.predicted_peak_bytes = s.predicted_peak_bytes;
        stats.workers = stats.workers.max(s.workers);
    }
    stats.amplitudes_in_batch = overrides_batch.len() as u64;
    stats.wall_seconds = start.elapsed().as_secs_f64();
    stats.seconds_per_subtask = if stats.subtasks_run > 0 {
        stats.wall_seconds * stats.workers as f64 / stats.subtasks_run as f64
    } else {
        0.0
    };
    Ok((results, stats))
}

/// Materialise one leaf for one slice assignment: substitute the execution's
/// override for the leaf data, then slice away every sliced edge the tensor
/// carries. Shared by the full-replay and stem-only paths so their leaf
/// semantics can never diverge.
fn sliced_leaf_tensor(
    plan: &SimulationPlan,
    overrides: &LeafOverrides,
    sliced: &[IndexId],
    assignment: usize,
    vertex: usize,
) -> DenseTensor<Complex64> {
    let mut t = overrides.get(&vertex).unwrap_or(&plan.build.nodes[vertex].data).clone();
    for (pos, &e) in sliced.iter().enumerate() {
        if t.indices().contains(e) {
            let bit = ((assignment >> pos) & 1) as u8;
            t = t.slice_index(e, bit);
        }
    }
    t
}

/// Execute one slice assignment: slice the leaves, replay the tree schedule.
/// Returns the subtask's root tensor and its flop count.
fn run_subtask(
    plan: &SimulationPlan,
    overrides: &LeafOverrides,
    sliced: &[IndexId],
    assignment: usize,
    gemm: &mut GemmTally,
) -> Result<(DenseTensor<Complex64>, u64), Error> {
    // Slots indexed by tree-node id.
    let num_nodes = plan.tree.nodes().len();
    let mut slots: Vec<Option<DenseTensor<Complex64>>> = vec![None; num_nodes];
    let mut flops = 0u64;

    // Leaves: apply output-rebinding overrides, slice away any sliced edges.
    for (node_id, node) in plan.tree.nodes().iter().enumerate() {
        if let Some(vertex) = node.leaf_vertex {
            slots[node_id] = Some(sliced_leaf_tensor(plan, overrides, sliced, assignment, vertex));
        }
    }

    // Replay the schedule.
    for (l, r, out) in plan.tree.schedule() {
        let a =
            slots[l].take().ok_or_else(|| Error::Internal(format!("left operand {l} missing")))?;
        let b =
            slots[r].take().ok_or_else(|| Error::Internal(format!("right operand {r} missing")))?;
        let spec = ContractionSpec::new(a.indices(), b.indices());
        flops += spec.flops();
        gemm.record_spec(&spec);
        slots[out] = Some(contract_pair(&a, &b));
    }
    slots[plan.tree.root()]
        .take()
        .ok_or_else(|| Error::Internal("root tensor missing".into()))
        .map(|root| (root, flops))
}

/// Fetch a stem-replay operand: a stem intermediate owned by `slots`
/// (consumed), a frontier tensor borrowed from `seeds`, or a branch tensor
/// borrowed from the plan-lifetime `cache`.
fn stem_operand<'a>(
    slots: &mut [Option<DenseTensor<Complex64>>],
    seeds: &'a HashMap<usize, DenseTensor<Complex64>>,
    cache: &'a BranchCache,
    id: usize,
) -> Result<Cow<'a, DenseTensor<Complex64>>, Error> {
    if let Some(t) = slots[id].take() {
        return Ok(Cow::Owned(t));
    }
    cached_tensor(seeds, cache, id)
        .map(Cow::Borrowed)
        .ok_or_else(|| Error::Internal(format!("operand {id} missing from slots and caches")))
}

/// Execute one slice assignment replaying **only the stem**: Stem-class
/// leaves are overridden and sliced to the assignment's values, Stem-class
/// contractions are replayed in schedule order, and every slice-invariant
/// operand is read from the per-execution frontier seeds or the
/// plan-lifetime branch cache. Returns the subtask's root tensor and the
/// flop count of the replayed contractions, split as
/// `(root, total_flops, pure_flops)`.
fn run_subtask_stem(
    plan: &SimulationPlan,
    seeds: &HashMap<usize, DenseTensor<Complex64>>,
    overrides: &LeafOverrides,
    sliced: &[IndexId],
    assignment: usize,
    gemm: &mut GemmTally,
) -> Result<(DenseTensor<Complex64>, u64, u64), Error> {
    let cls = &plan.classification;
    let root = plan.tree.root();
    // `prepare_reuse` built the cache before any worker started.
    let cache = cache_of(plan)?;
    if !cls.class(root).is_stem() {
        // No contraction depends on the slice assignment (empty slicing
        // set): the cached root tensor *is* the subtask result.
        return seeds
            .get(&root)
            .or_else(|| cache.tensor(root))
            .cloned()
            .map(|t| (t, 0, 0))
            .ok_or_else(|| Error::Internal("slice-invariant root missing from caches".into()));
    }

    let num_nodes = plan.tree.nodes().len();
    let mut slots: Vec<Option<DenseTensor<Complex64>>> = vec![None; num_nodes];
    let mut flops = 0u64;
    let mut pure_flops = 0u64;

    // Stem leaves: apply output-rebinding overrides, slice away the sliced
    // edges (every leaf carrying a sliced edge is stem-class by definition).
    for (node_id, node) in plan.tree.nodes().iter().enumerate() {
        if !cls.class(node_id).is_stem() {
            continue;
        }
        if let Some(vertex) = node.leaf_vertex {
            slots[node_id] = Some(sliced_leaf_tensor(plan, overrides, sliced, assignment, vertex));
        }
    }

    // Replay the stem schedule, seeding slice-invariant operands from the
    // per-execution frontier seeds or the plan-lifetime branch cache.
    for &(l, r, out) in cls.stem_schedule() {
        fault_contraction_tick();
        let a = stem_operand(&mut slots, seeds, cache, l)?;
        let b = stem_operand(&mut slots, seeds, cache, r)?;
        let spec = ContractionSpec::new(a.indices(), b.indices());
        flops += spec.flops();
        gemm.record_spec(&spec);
        if cls.class(out) == NodeClass::StemPure {
            pure_flops += spec.flops();
        }
        slots[out] = Some(contract_pair(&a, &b));
    }
    slots[root]
        .take()
        .ok_or_else(|| Error::Internal("root tensor missing".into()))
        .map(|t| (t, flops, pure_flops))
}

/// Merge a subtask result into the partial accumulator: stack over sliced
/// open indices (write into the slot the assignment selects), sum otherwise.
fn merge_subtask(
    partial: &mut DenseTensor<Complex64>,
    result: &DenseTensor<Complex64>,
    sliced_open: &[IndexId],
    sliced: &[IndexId],
    assignment: usize,
) {
    if sliced_open.is_empty() {
        // Pure summation; axis order of result may differ from partial.
        if result.rank() == 0 && partial.rank() == 0 {
            let v = partial.scalar_value() + result.scalar_value();
            partial.data_mut()[0] = v;
        } else {
            let aligned = qtn_tensor::permute::permute_to_order(result, partial.indices());
            partial.accumulate(&aligned);
        }
        return;
    }
    // Stack: expand the result with the sliced open indices fixed to the
    // assignment's bits, then accumulate (the summed contribution of the
    // closed sliced edges still adds across subtasks sharing the same open
    // bits).
    let mut expanded = result.clone();
    for &e in sliced_open {
        let pos = sliced.iter().position(|&x| x == e).unwrap();
        let bit = ((assignment >> pos) & 1) as u8;
        let mut axes: Vec<IndexId> = vec![e];
        axes.extend(expanded.indices().iter());
        let mut bigger = DenseTensor::<Complex64>::zeros(qtn_tensor::IndexSet::new(axes));
        expanded.stack_into(&mut bigger, e, bit);
        expanded = bigger;
    }
    let aligned = qtn_tensor::permute::permute_to_order(&expanded, partial.indices());
    partial.accumulate(&aligned);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_simulation, PlannerConfig};
    use qtn_circuit::{OutputSpec, RqcConfig};
    use qtn_statevector::StateVector;

    fn check_amplitude_against_statevector(
        rows: usize,
        cols: usize,
        cycles: usize,
        seed: u64,
        target_rank: usize,
        workers: usize,
    ) {
        let circuit = RqcConfig::small(rows, cols, cycles, seed).build();
        let n = circuit.num_qubits();
        let bits: Vec<u8> = (0..n).map(|q| ((seed as usize + q) % 2) as u8).collect();
        let plan = plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(bits.clone()),
            &PlannerConfig { target_rank, ..Default::default() },
        );
        let (result, stats) =
            execute_plan(&plan, &ExecutorConfig { workers, max_subtasks: 0, ..Default::default() });
        let sv = StateVector::simulate(&circuit);
        let expected = sv.amplitude(&bits);
        let got = result.scalar_value();
        assert!(
            (got - expected).abs() < 1e-8,
            "amplitude mismatch: {got:?} vs {expected:?} ({} subtasks)",
            stats.subtasks_total
        );
        assert_eq!(stats.subtasks_run, stats.subtasks_total);
        assert!(stats.flops > 0);
    }

    #[test]
    fn unsliced_execution_matches_statevector() {
        check_amplitude_against_statevector(2, 3, 6, 1, 30, 2);
    }

    #[test]
    fn sliced_execution_matches_statevector() {
        // Tight target forces several sliced edges -> many subtasks.
        check_amplitude_against_statevector(3, 3, 8, 2, 8, 4);
    }

    #[test]
    fn heavily_sliced_execution_matches_statevector() {
        check_amplitude_against_statevector(3, 3, 8, 3, 6, 4);
    }

    #[test]
    fn single_worker_and_many_workers_agree() {
        let circuit = RqcConfig::small(3, 3, 8, 4).build();
        let n = circuit.num_qubits();
        let plan = plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 8, ..Default::default() },
        );
        let (a, _) = execute_plan(
            &plan,
            &ExecutorConfig { workers: 1, max_subtasks: 0, ..Default::default() },
        );
        let (b, _) = execute_plan(
            &plan,
            &ExecutorConfig { workers: 8, max_subtasks: 0, ..Default::default() },
        );
        assert!((a.scalar_value() - b.scalar_value()).abs() < 1e-10);
    }

    #[test]
    fn repeated_pooled_executions_are_bit_identical() {
        let circuit = RqcConfig::small(3, 3, 8, 9).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 7, ..Default::default() },
        ));
        let pool = WorkerPool::new(4);
        let config = ExecutorConfig { workers: 4, max_subtasks: 0, ..Default::default() };
        let overrides = Arc::new(LeafOverrides::new());
        let (a, _) = execute_on_pool(&pool, &plan, &overrides, &config).unwrap();
        for _ in 0..5 {
            let (b, _) = execute_on_pool(&pool, &plan, &overrides, &config).unwrap();
            assert_eq!(a.data(), b.data(), "pooled execution must be deterministic");
        }
    }

    #[test]
    fn overrides_retarget_the_output_projectors() {
        let circuit = RqcConfig::small(2, 3, 6, 12).build();
        let n = circuit.num_qubits();
        let template = vec![0u8; n];
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(template),
            &PlannerConfig { target_rank: 8, ..Default::default() },
        ));
        let pool = WorkerPool::new(2);
        let config = ExecutorConfig { workers: 2, max_subtasks: 0, ..Default::default() };
        let sv = StateVector::simulate(&circuit);
        let patterns: Vec<Vec<u8>> = vec![
            vec![1; n],
            (0..n).map(|q| (q % 2) as u8).collect(),
            (0..n).map(|q| ((q + 1) % 2) as u8).collect(),
        ];
        for bits in patterns {
            let overrides: LeafOverrides =
                plan.build.rebind_output(&bits).unwrap().into_iter().collect();
            let (result, _) = execute_on_pool(&pool, &plan, &Arc::new(overrides), &config).unwrap();
            let expected = sv.amplitude(&bits);
            assert!(
                (result.scalar_value() - expected).abs() < 1e-8,
                "rebound amplitude mismatch for {bits:?}"
            );
        }
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        let pool = WorkerPool::new(2);
        for _ in 0..4 {
            pool.submit(Box::new(|| panic!("job blew up")));
        }
        // Every worker has met a panic; the pool must still serve jobs.
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || {
            let _ = tx.send(42);
        }));
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(42));
        // And a pooled execution after the panics still succeeds.
        let circuit = RqcConfig::small(2, 2, 4, 8).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 20, ..Default::default() },
        ));
        let config = ExecutorConfig { workers: 2, max_subtasks: 0, ..Default::default() };
        let result = execute_on_pool(&pool, &plan, &Arc::new(LeafOverrides::new()), &config);
        assert!(result.is_ok());
    }

    #[test]
    fn worker_pool_runs_submitted_jobs() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let (tx, rx) = mpsc::channel();
        for i in 0..10usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                let _ = tx.send(i * i);
            }));
        }
        drop(tx);
        let mut results: Vec<usize> = rx.iter().collect();
        results.sort_unstable();
        assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn open_output_matches_statevector_marginal() {
        // Open two qubits: the result tensor must equal the state-vector
        // amplitudes with the other qubits fixed to 0.
        let circuit = RqcConfig::small(2, 3, 6, 5).build();
        let n = circuit.num_qubits();
        let open = vec![0usize, 1usize];
        let plan = plan_simulation(
            &circuit,
            &OutputSpec::Open { fixed: vec![0; n], open: open.clone() },
            &PlannerConfig { target_rank: 7, ..Default::default() },
        );
        let (result, _) = execute_plan(&plan, &ExecutorConfig::default());
        assert_eq!(result.rank(), 2);
        let sv = StateVector::simulate(&circuit);
        // Map open qubits to their network indices to find the axis order.
        let order: qtn_tensor::IndexSet =
            plan.build.open_indices.iter().map(|&(_, id)| id).collect();
        let result = qtn_tensor::permute::permute_to_order(&result, &order);
        for b0 in 0..2u8 {
            for b1 in 0..2u8 {
                let mut bits = vec![0u8; n];
                bits[open[0]] = b0;
                bits[open[1]] = b1;
                let expected = sv.amplitude(&bits);
                let got = result.get(&[b0, b1]);
                assert!(
                    (got - expected).abs() < 1e-8,
                    "open amplitude mismatch at {b0}{b1}: {got:?} vs {expected:?}"
                );
            }
        }
    }

    #[test]
    fn reuse_and_full_replay_are_bit_identical() {
        let circuit = RqcConfig::small(3, 3, 8, 2).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 7, ..Default::default() },
        ));
        assert!(plan.slicing.len() >= 2, "plan must be sliced for this test");
        let pool = WorkerPool::new(4);
        let reuse =
            ExecutorConfig { workers: 4, max_subtasks: 0, reuse: true, ..Default::default() };
        let replay =
            ExecutorConfig { workers: 4, max_subtasks: 0, reuse: false, ..Default::default() };
        for k in 0..4usize {
            let bits: Vec<u8> = (0..n).map(|q| ((k >> (q % 2)) & 1) as u8).collect();
            let overrides: Arc<LeafOverrides> =
                Arc::new(plan.build.rebind_output(&bits).unwrap().into_iter().collect());
            let (a, sa) = execute_on_pool(&pool, &plan, &overrides, &reuse).unwrap();
            let (b, sb) = execute_on_pool(&pool, &plan, &overrides, &replay).unwrap();
            assert_eq!(a.data(), b.data(), "stem-only sweep must be bit-identical for {bits:?}");
            assert!(
                sa.flops < sb.flops,
                "reuse must execute fewer flops ({} vs {})",
                sa.flops,
                sb.flops
            );
            assert_eq!(sb.stem_flops, sb.flops, "full replay attributes all work to the stem");
            assert_eq!(sb.branch_flops_reused, 0);
        }
    }

    #[test]
    fn reuse_counters_track_phase_lifetimes() {
        let circuit = RqcConfig::small(3, 3, 8, 3).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 7, ..Default::default() },
        ));
        assert!(plan.slicing.len() >= 2);
        assert!(!plan.branch_cache_built());
        let (branch, frontier, stem_pure, stem_mixed) = plan.classification.contraction_counts();
        assert!(stem_pure + stem_mixed > 0);
        let pool = WorkerPool::new(2);
        let config =
            ExecutorConfig { workers: 2, max_subtasks: 0, reuse: true, ..Default::default() };
        let overrides = Arc::new(LeafOverrides::new());

        // First execution builds the branch cache exactly once…
        let (_, s1) = execute_on_pool(&pool, &plan, &overrides, &config).unwrap();
        assert_eq!(s1.branch_contractions, branch as u64);
        assert_eq!(s1.frontier_contractions, frontier as u64);
        assert_eq!(s1.flops, s1.stem_flops + s1.frontier_flops + s1.branch_flops);
        assert!(plan.branch_cache_built());

        // …later executions only pay the frontier and the stem.
        let (_, s2) = execute_on_pool(&pool, &plan, &overrides, &config).unwrap();
        assert_eq!(s2.branch_contractions, 0);
        assert_eq!(s2.branch_flops, 0);
        assert_eq!(s2.frontier_contractions, frontier as u64);
        assert_eq!(s2.stem_flops, s1.stem_flops, "per-subtask work is assignment-independent");
        if s1.branch_flops + s1.frontier_flops > 0 && s1.subtasks_run > 1 {
            assert!(s2.branch_flops_reused > 0, "a sliced sweep must reuse branch work");
        }
    }

    #[test]
    fn foreign_overrides_fall_back_to_full_replay() {
        let circuit = RqcConfig::small(3, 3, 8, 2).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 8, ..Default::default() },
        ));
        let pool = WorkerPool::new(2);
        let config =
            ExecutorConfig { workers: 2, max_subtasks: 0, reuse: true, ..Default::default() };
        // Overriding a non-projector leaf (vertex 0 is an init tensor) with
        // its own data must bypass the caches — the classification cannot
        // vouch for it — and still produce the unmodified result.
        let mut overrides = LeafOverrides::new();
        overrides.insert(0, plan.build.nodes[0].data.clone());
        let (a, stats) = execute_on_pool(&pool, &plan, &Arc::new(overrides), &config).unwrap();
        assert_eq!(stats.frontier_contractions, 0, "reuse must be bypassed");
        assert_eq!(stats.branch_contractions, 0);
        assert!(!plan.branch_cache_built());
        let (b, _) =
            execute_on_pool(&pool, &plan, &Arc::new(LeafOverrides::new()), &config).unwrap();
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn unsliced_plan_reuses_the_frontier_root() {
        // A loose target means no slicing: the whole contraction is
        // slice-invariant, the single subtask just reads the cached root.
        let circuit = RqcConfig::small(2, 3, 6, 7).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 40, ..Default::default() },
        ));
        assert!(plan.slicing.is_empty());
        let pool = WorkerPool::new(1);
        let config =
            ExecutorConfig { workers: 1, max_subtasks: 0, reuse: true, ..Default::default() };
        let (result, stats) =
            execute_on_pool(&pool, &plan, &Arc::new(LeafOverrides::new()), &config).unwrap();
        assert_eq!(stats.stem_flops, 0, "nothing depends on a slice assignment");
        assert!(stats.flops > 0);
        let sv = StateVector::simulate(&circuit);
        let expected = sv.amplitude(&vec![0; n]);
        assert!((result.scalar_value() - expected).abs() < 1e-8);
    }

    #[test]
    fn pooled_and_unpooled_sweeps_are_bit_identical() {
        let circuit = RqcConfig::small(3, 3, 8, 5).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 7, ..Default::default() },
        ));
        assert!(plan.slicing.len() >= 2, "plan must be sliced for this test");
        let pool = WorkerPool::new(4);
        let pooled = ExecutorConfig { workers: 4, max_subtasks: 0, reuse: true, pool: true };
        let unpooled = ExecutorConfig { workers: 4, max_subtasks: 0, reuse: true, pool: false };
        for k in 0..4usize {
            let bits: Vec<u8> = (0..n).map(|q| ((k >> (q % 2)) & 1) as u8).collect();
            let overrides: Arc<LeafOverrides> =
                Arc::new(plan.build.rebind_output(&bits).unwrap().into_iter().collect());
            let (a, sa) = execute_on_pool(&pool, &plan, &overrides, &pooled).unwrap();
            let (b, sb) = execute_on_pool(&pool, &plan, &overrides, &unpooled).unwrap();
            assert_eq!(a.data(), b.data(), "pooling must be bit-identical for {bits:?}");
            // The first call additionally builds the plan-lifetime branch
            // cache; the per-subtask and per-execution work must agree.
            assert_eq!(sa.stem_flops, sb.stem_flops, "pooling must not change the stem work");
            assert_eq!(sa.frontier_flops, sb.frontier_flops);
            assert_eq!(sb.buffers_allocated, 0, "unpooled runs must not touch the pool");
            assert_eq!(sb.peak_bytes_in_flight, 0);
        }
    }

    #[test]
    fn pool_counters_prove_zero_alloc_steady_state() {
        let circuit = RqcConfig::small(3, 3, 8, 2).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 7, ..Default::default() },
        ));
        assert!(plan.num_subtasks() >= 4);
        let pool = WorkerPool::new(2);
        let config = ExecutorConfig { workers: 2, max_subtasks: 0, reuse: true, pool: true };
        let overrides = Arc::new(LeafOverrides::new());
        assert_eq!(plan.pooled_buffers_retained(), 0);

        // Cold pools: each worker allocates exactly the slot count the
        // greedy interval assignment predicted — once, on its first
        // subtask, regardless of how many subtasks it sweeps.
        let (_, s1) = execute_on_pool(&pool, &plan, &overrides, &config).unwrap();
        let slots = plan.memory_plan.stem.num_slots() as u64;
        assert!(slots > 0);
        assert_eq!(s1.buffers_allocated, s1.workers as u64 * slots);
        assert!(s1.buffers_reused > 0, "later subtasks must recycle the first subtask's buffers");
        assert_eq!(s1.peak_bytes_in_flight, s1.predicted_peak_bytes);
        assert_eq!(s1.predicted_peak_bytes, plan.memory_plan.stem.peak_bytes());
        assert!(plan.pooled_buffers_retained() > 0, "pools persist on the plan");

        // Warm pools: the steady state allocates nothing at all.
        let (_, s2) = execute_on_pool(&pool, &plan, &overrides, &config).unwrap();
        assert_eq!(s2.buffers_allocated, 0, "second execution must be allocation-free");
        assert!(s2.buffers_reused >= s1.buffers_reused);
        assert_eq!(s2.peak_bytes_in_flight, s2.predicted_peak_bytes);
    }

    #[test]
    fn unsliced_plan_bypasses_the_buffer_pool() {
        let circuit = RqcConfig::small(2, 3, 6, 7).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 40, ..Default::default() },
        ));
        assert!(plan.slicing.is_empty());
        let pool = WorkerPool::new(1);
        let config = ExecutorConfig { workers: 1, max_subtasks: 0, reuse: true, pool: true };
        let (_, stats) =
            execute_on_pool(&pool, &plan, &Arc::new(LeafOverrides::new()), &config).unwrap();
        // Nothing is slice-dependent: no pooled replay, no pool traffic,
        // and the stem-phase prediction is zero accordingly.
        assert_eq!(stats.buffers_allocated, 0);
        assert_eq!(stats.peak_bytes_in_flight, 0);
        assert_eq!(stats.predicted_peak_bytes, 0);
        assert_eq!(plan.pooled_buffers_retained(), 0);
    }

    fn rebind_one(plan: &SimulationPlan, bits: &[u8]) -> Arc<LeafOverrides> {
        Arc::new(plan.build.rebind_output(bits).unwrap().into_iter().collect())
    }

    #[test]
    fn batched_execution_is_bit_identical_to_a_loop_of_singles() {
        let circuit = RqcConfig::small(3, 3, 8, 2).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 7, ..Default::default() },
        ));
        assert!(plan.slicing.len() >= 2, "plan must be sliced for this test");
        let pool = WorkerPool::new(4);
        let patterns: Vec<Vec<u8>> =
            (0..6usize).map(|k| (0..n).map(|q| ((k >> (q % 3)) & 1) as u8).collect()).collect();
        let batch: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
        for pooled in [true, false] {
            let config = ExecutorConfig { workers: 4, max_subtasks: 0, reuse: true, pool: pooled };
            let (results, stats) =
                execute_amplitudes_on_pool(&pool, &plan, &batch, &config).unwrap();
            assert_eq!(results.len(), patterns.len());
            assert_eq!(stats.amplitudes_in_batch, patterns.len() as u64);
            for (bits, batched) in patterns.iter().zip(results.iter()) {
                let (single, _) =
                    execute_on_pool(&pool, &plan, &rebind_one(&plan, bits), &config).unwrap();
                assert_eq!(
                    batched.data(),
                    single.data(),
                    "batched execution must be bit-identical to a single execute (pooled={pooled})"
                );
            }
        }
    }

    #[test]
    fn batched_pure_prefix_runs_once_per_subtask_regardless_of_batch_size() {
        let circuit = RqcConfig::small(3, 3, 8, 5).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 7, ..Default::default() },
        ));
        assert!(plan.slicing.len() >= 2);
        let (_, _, pure, _) = plan.classification.contraction_counts();
        assert!(pure > 0, "the stem must have a pure prefix for amortization to exist");
        let pool = WorkerPool::new(2);
        let config = ExecutorConfig { workers: 2, max_subtasks: 0, reuse: true, pool: true };
        let mut pure_flops_seen = None;
        for b in [1usize, 4, 16] {
            let patterns: Vec<Vec<u8>> =
                (0..b).map(|k| (0..n).map(|q| ((k >> (q % 4)) & 1) as u8).collect()).collect();
            let batch: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
            let (_, stats) = execute_amplitudes_on_pool(&pool, &plan, &batch, &config).unwrap();
            assert_eq!(
                stats.stem_pure_contractions,
                (pure * plan.num_subtasks()) as u64,
                "pure contractions must not scale with the batch size (B={b})"
            );
            let pure_flops = stats.stem_pure_flops;
            assert!(pure_flops > 0);
            if let Some(seen) = pure_flops_seen {
                assert_eq!(pure_flops, seen, "pure work is batch-size invariant");
            }
            pure_flops_seen = Some(pure_flops);
            assert_eq!(stats.stem_pure_flops_reused, pure_flops * (b as u64 - 1));
            assert_eq!(stats.amplitudes_in_batch, b as u64);
        }
    }

    #[test]
    fn batched_pooled_peak_matches_the_batched_prediction() {
        let circuit = RqcConfig::small(3, 3, 8, 2).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 7, ..Default::default() },
        ));
        assert!(plan.slicing.len() >= 2);
        let pool = WorkerPool::new(2);
        let config = ExecutorConfig { workers: 2, max_subtasks: 0, reuse: true, pool: true };
        let patterns: Vec<Vec<u8>> =
            (0..8usize).map(|k| (0..n).map(|q| ((k >> (q % 3)) & 1) as u8).collect()).collect();
        let batch: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
        let (_, stats) = execute_amplitudes_on_pool(&pool, &plan, &batch, &config).unwrap();
        assert_eq!(stats.predicted_peak_bytes, plan.memory_plan.batched_stem.peak_bytes());
        assert_eq!(
            stats.peak_bytes_in_flight, stats.predicted_peak_bytes,
            "the batched lifetime simulation must be exact"
        );
        // A second batch on the warm plan pools allocates nothing.
        let (_, warm) = execute_amplitudes_on_pool(&pool, &plan, &batch, &config).unwrap();
        assert_eq!(warm.buffers_allocated, 0, "warm batched sweep must be allocation-free");
        assert_eq!(warm.peak_bytes_in_flight, warm.predicted_peak_bytes);
    }

    #[test]
    fn batched_execution_without_reuse_falls_back_to_the_loop() {
        let circuit = RqcConfig::small(3, 3, 8, 4).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 8, ..Default::default() },
        ));
        let pool = WorkerPool::new(2);
        let reuse = ExecutorConfig { workers: 2, max_subtasks: 0, reuse: true, pool: true };
        let replay = ExecutorConfig { workers: 2, max_subtasks: 0, reuse: false, pool: true };
        let patterns: Vec<Vec<u8>> =
            (0..3usize).map(|k| (0..n).map(|q| ((k >> (q % 2)) & 1) as u8).collect()).collect();
        let batch: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
        let (a, sa) = execute_amplitudes_on_pool(&pool, &plan, &batch, &reuse).unwrap();
        let (b, sb) = execute_amplitudes_on_pool(&pool, &plan, &batch, &replay).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.data(), y.data(), "fallback must be bit-identical to the batched path");
        }
        assert_eq!(sb.stem_pure_flops, 0, "the full replay does not classify contractions");
        assert_eq!(sb.amplitudes_in_batch, patterns.len() as u64);
        assert!(sa.flops < sb.flops, "batching must save work over the reuse-off loop");
    }

    #[test]
    fn batched_execution_of_an_unsliced_plan_reads_cached_roots() {
        let circuit = RqcConfig::small(2, 3, 6, 7).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 40, ..Default::default() },
        ));
        assert!(plan.slicing.is_empty());
        let pool = WorkerPool::new(1);
        let config = ExecutorConfig { workers: 1, max_subtasks: 0, reuse: true, pool: true };
        let patterns: Vec<Vec<u8>> = vec![vec![0; n], vec![1; n]];
        let batch: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
        let (results, stats) = execute_amplitudes_on_pool(&pool, &plan, &batch, &config).unwrap();
        assert_eq!(stats.stem_flops, 0);
        assert_eq!(stats.stem_pure_contractions, 0);
        let sv = StateVector::simulate(&circuit);
        for (bits, result) in patterns.iter().zip(results.iter()) {
            assert!((result.scalar_value() - sv.amplitude(bits)).abs() < 1e-8);
        }
    }

    #[test]
    fn empty_batch_is_a_cheap_no_op() {
        let circuit = RqcConfig::small(2, 2, 4, 1).build();
        let n = circuit.num_qubits();
        let plan = Arc::new(plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 20, ..Default::default() },
        ));
        let pool = WorkerPool::new(1);
        let (results, stats) =
            execute_amplitudes_on_pool(&pool, &plan, &[], &ExecutorConfig::default()).unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.amplitudes_in_batch, 0);
        assert_eq!(stats.flops, 0);
    }

    #[test]
    fn max_subtasks_limits_work() {
        let circuit = RqcConfig::small(3, 3, 8, 6).build();
        let n = circuit.num_qubits();
        let plan = plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 5, ..Default::default() },
        );
        assert!(plan.num_subtasks() > 2);
        let (_, stats) = execute_plan(
            &plan,
            &ExecutorConfig { workers: 2, max_subtasks: 2, ..Default::default() },
        );
        assert_eq!(stats.subtasks_run, 2);
        assert!(stats.subtasks_total > 2);
        assert!(stats.seconds_per_subtask >= 0.0);
    }

    /// Sum of the per-class dispatch counters: every executed contraction
    /// lands in exactly one bucket.
    fn gemm_total(stats: &ExecutionStats) -> u64 {
        stats.gemm_micro + stats.gemm_gemv + stats.gemm_narrow + stats.gemm_blocked
    }

    #[test]
    fn gemm_dispatch_counters_cover_every_contraction() {
        let circuit = RqcConfig::small(3, 3, 8, 2).build();
        let n = circuit.num_qubits();
        let make_plan = || {
            plan_simulation(
                &circuit,
                &OutputSpec::Amplitude(vec![0; n]),
                &PlannerConfig { target_rank: 8, ..Default::default() },
            )
        };

        // Reuse path: branch (built once) + frontier + stem-per-subtask.
        let plan = make_plan();
        let (_, stats) = execute_plan(&plan, &ExecutorConfig { workers: 2, ..Default::default() });
        let stem = plan.classification.stem_schedule().len() as u64 * stats.subtasks_run as u64;
        assert_eq!(
            gemm_total(&stats),
            stats.branch_contractions + stats.frontier_contractions + stem,
        );
        assert!(stats.gemm_simd <= gemm_total(&stats));
        assert!(matches!(stats.simd_level, "scalar" | "neon" | "avx2-fma"));
        assert_eq!(stats.simd_level, qtn_tensor::simd_level().as_str());
        // At the scalar level no contraction may count as SIMD; at a SIMD
        // level the dominant blocked/micro/narrow dispatches must.
        if qtn_tensor::simd_level() == qtn_tensor::SimdLevel::Scalar {
            assert_eq!(stats.gemm_simd, 0);
        }

        // Full replay: every tree contraction, every subtask — same buckets.
        let plan = make_plan();
        let (_, full) =
            execute_plan(&plan, &ExecutorConfig { workers: 2, reuse: false, ..Default::default() });
        assert_eq!(gemm_total(&full), plan.tree.schedule().len() as u64 * full.subtasks_run as u64,);

        // The tally derives from frozen kernel plans, so it is deterministic
        // across repeated executions (later runs just drop the branch part).
        let plan = make_plan();
        let config = ExecutorConfig { workers: 2, ..Default::default() };
        let (_, first) = execute_plan(&plan, &config);
        let (_, second) = execute_plan(&plan, &config);
        assert_eq!(
            gemm_total(&second) + first.branch_contractions,
            gemm_total(&first),
            "second execution re-dispatches everything but the cached branch"
        );
    }

    #[test]
    fn gemm_shape_histogram_matches_full_replay_dispatch() {
        let circuit = RqcConfig::small(3, 3, 8, 3).build();
        let n = circuit.num_qubits();
        let plan = plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 8, ..Default::default() },
        );
        let hist = plan.gemm_shape_histogram();
        assert!(!hist.is_empty());
        // Total weighted count = tree contractions with stem steps repeated
        // per subtask — exactly what a full reusing execution dispatches.
        let total: u64 = hist.iter().map(|&(_, c)| c).sum();
        let stem = plan.classification.stem_schedule().len() as u64;
        let non_stem = plan.tree.schedule().len() as u64 - stem;
        assert_eq!(total, non_stem + stem * plan.num_subtasks() as u64);
        // Sorted by descending total flops.
        let flops: Vec<u64> =
            hist.iter().map(|&((m, n, k), c)| qtn_tensor::gemm::gemm_flops(m, n, k) * c).collect();
        assert!(flops.windows(2).all(|w| w[0] >= w[1]));
        // All bond dimensions are 2: every shape is a power of two.
        for &((m, n, k), _) in &hist {
            assert!(m.is_power_of_two() && n.is_power_of_two() && k.is_power_of_two());
        }
    }

    #[test]
    fn dep_keys_pack_beyond_64_dependent_qubits() {
        // 100 dependent ordinals: more than a u64 could hold, still one
        // u128 — the path the old packed-u64 key used to bail out of with a
        // per-bitstring fallback.
        let ordinals: Vec<usize> = (0..100).collect();
        let mut bits = vec![0u8; 100];
        bits[0] = 1;
        bits[70] = 1;
        bits[99] = 1;
        let key = pack_dep_key(&ordinals, &bits);
        assert_eq!(key, DepKey::Packed(1 | (1u128 << 70) | (1u128 << 99)));
        // Flipping a bit above position 64 changes the key.
        bits[70] = 0;
        assert_ne!(pack_dep_key(&ordinals, &bits), key);

        // Keys are *compact*: only the masked ordinals feed the key, so two
        // bitstrings differing outside the mask are indistinguishable.
        let sparse = [3usize, 71, 99];
        let mut a = vec![0u8; 100];
        let mut b = vec![1u8; 100];
        for &o in &sparse {
            a[o] = 1;
            b[o] = 1;
        }
        assert_eq!(pack_dep_key(&sparse, &a), pack_dep_key(&sparse, &b));
        assert_eq!(pack_dep_key(&sparse, &a), DepKey::Packed(0b111));
    }

    #[test]
    fn dep_keys_spill_to_wide_words_past_128_ordinals() {
        let ordinals: Vec<usize> = (0..200).collect();
        let mut bits = vec![0u8; 200];
        bits[5] = 1;
        bits[140] = 1;
        let key = pack_dep_key(&ordinals, &bits);
        match &key {
            DepKey::Wide(words) => {
                assert_eq!(words.len(), 2);
                assert_eq!(words[0], 1u128 << 5);
                assert_eq!(words[1], 1u128 << (140 - 128));
            }
            DepKey::Packed(_) => panic!("200 ordinals must use the wide representation"),
        }
        // Hash/Eq line up across representations of the same width.
        assert_eq!(key.clone(), pack_dep_key(&ordinals, &bits));
        bits[199] = 1;
        assert_ne!(pack_dep_key(&ordinals, &bits), key);
    }

    #[test]
    fn mixed_dedup_orders_the_batch_by_dependent_keys() {
        // RQC plan with a StemMixed root: the dedup tables must cover every
        // mixed node, intern at most `batch` ids per node, and sort the
        // batch so equal full-dependency keys are adjacent.
        let circuit = RqcConfig::small(3, 3, 8, 13).build();
        let n = circuit.num_qubits();
        let plan = plan_simulation(
            &circuit,
            &OutputSpec::Amplitude(vec![0; n]),
            &PlannerConfig { target_rank: 7, ..Default::default() },
        );
        assert!(!plan.classification.stem_mixed_schedule().is_empty());
        let bits: Vec<Vec<u8>> =
            (0..16).map(|k| (0..n).map(|q| ((k >> (q % 4)) & 1) as u8).collect()).collect();
        let dedup = build_mixed_dedup(&plan, &bits);
        let mut sorted = dedup.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "order is a permutation of the batch");
        for &(_, _, out) in plan.classification.stem_mixed_schedule() {
            let ids = dedup.key_ids[out].as_ref().expect("every mixed out gets a key table");
            assert_eq!(ids.len(), 16);
            // Sorted order keeps equal keys adjacent: each distinct id
            // appears in exactly one contiguous run when masks are nested,
            // and never more runs than distinct ids times fragmentation by
            // wider masks — at minimum, the distinct count is consistent.
            let distinct = ids.iter().collect::<std::collections::HashSet<_>>().len();
            assert!(distinct as u64 <= 16);
        }
        assert!(dedup.distinct_contraction_keys > 0);
    }
}
