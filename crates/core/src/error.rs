//! Crate-wide error type.
//!
//! Every fallible operation of the engine API returns [`Error`] instead of
//! panicking: input validation happens at the API boundary (bitstring
//! lengths, bit values, open-qubit sets), shape misuse is caught when an
//! execute method is called on a [`crate::CompiledCircuit`] of the wrong
//! output shape, and internal executor invariant violations surface as
//! [`Error::Internal`] rather than `expect` panics.

use qtn_circuit::RebindError;

/// Everything that can go wrong when compiling or executing a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A bitstring's length does not match the circuit's qubit count.
    BitstringLength {
        /// Qubits in the circuit.
        expected: usize,
        /// Length of the bitstring that was supplied.
        got: usize,
    },
    /// A bit value other than 0 or 1 was supplied.
    InvalidBit {
        /// The offending qubit position.
        qubit: usize,
        /// The offending value.
        value: u8,
    },
    /// An open-qubit id is not a valid qubit of the circuit.
    OpenQubitOutOfRange {
        /// The offending qubit id.
        qubit: usize,
        /// Qubits in the circuit.
        num_qubits: usize,
    },
    /// The same qubit appears twice in an open-qubit set.
    DuplicateOpenQubit {
        /// The duplicated qubit id.
        qubit: usize,
    },
    /// An execute method was called on a compiled circuit of a different
    /// output shape (e.g. `execute_amplitude` on an open-output compilation).
    OutputShapeMismatch {
        /// What the compiled circuit was compiled for.
        compiled: &'static str,
        /// What the call requires.
        requested: &'static str,
    },
    /// A compiled plan's predicted peak buffer memory (from the plan-time
    /// lifetime analysis) exceeds the configured
    /// [`crate::PlannerConfig::memory_budget_bytes`]. Raise the budget or
    /// lower `target_rank` so slicing produces smaller subtasks.
    MemoryBudgetExceeded {
        /// Predicted per-worker peak bytes of the worst reuse phase.
        predicted_bytes: u64,
        /// The configured budget.
        budget_bytes: u64,
    },
    /// A parameter rebind named a slot index the compiled circuit does not
    /// have (see [`qtn_circuit::NetworkBuild::param_slots`]).
    UnknownParamSlot {
        /// The offending slot index.
        slot: usize,
        /// Parameter slots the circuit was built with.
        slots: usize,
    },
    /// A parameter rebind supplied a NaN or infinite angle.
    NonFiniteParam {
        /// The slot the non-finite value targeted.
        slot: usize,
    },
    /// Sampling was requested from an amplitude tensor whose total
    /// probability mass is zero (every amplitude is exactly 0).
    ZeroAmplitudeDistribution,
    /// An execution worker panicked and the panic was caught at the
    /// execution boundary: only the affected execution fails, the worker
    /// pool and any serving layer above keep running. Carries the panic
    /// payload's message when it was a string.
    ExecutionPanic(String),
    /// An internal invariant of the executor was violated. Seeing this is a
    /// bug in the planner/executor, not a user error.
    Internal(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BitstringLength { expected, got } => {
                write!(f, "bitstring length {got} does not match {expected} qubits")
            }
            Error::InvalidBit { qubit, value } => {
                write!(f, "bit value {value} for qubit {qubit} is not 0 or 1")
            }
            Error::OpenQubitOutOfRange { qubit, num_qubits } => {
                write!(f, "open qubit {qubit} out of range for {num_qubits} qubits")
            }
            Error::DuplicateOpenQubit { qubit } => {
                write!(f, "open qubit {qubit} listed more than once")
            }
            Error::OutputShapeMismatch { compiled, requested } => {
                write!(
                    f,
                    "compiled circuit has {compiled} output shape but the call requires {requested}"
                )
            }
            Error::MemoryBudgetExceeded { predicted_bytes, budget_bytes } => {
                write!(
                    f,
                    "plan's predicted peak memory ({predicted_bytes} bytes) exceeds the \
                     {budget_bytes}-byte budget"
                )
            }
            Error::UnknownParamSlot { slot, slots } => {
                write!(f, "parameter slot {slot} out of range for {slots} slots")
            }
            Error::NonFiniteParam { slot } => {
                write!(f, "non-finite value for parameter slot {slot}")
            }
            Error::ZeroAmplitudeDistribution => {
                write!(f, "cannot sample from an all-zero amplitude tensor")
            }
            Error::ExecutionPanic(msg) => write!(f, "an execution worker panicked: {msg}"),
            Error::Internal(msg) => write!(f, "internal executor invariant violated: {msg}"),
        }
    }
}

impl Error {
    /// Convert a payload caught by `std::panic::catch_unwind` into a typed
    /// [`Error::ExecutionPanic`], extracting the message when the payload
    /// is the usual `&str` or `String`.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Error {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Error::ExecutionPanic(msg)
    }
}

impl std::error::Error for Error {}

impl From<RebindError> for Error {
    fn from(e: RebindError) -> Self {
        match e {
            RebindError::BitstringLength { expected, got } => {
                Error::BitstringLength { expected, got }
            }
            RebindError::InvalidBit { qubit, value } => Error::InvalidBit { qubit, value },
            RebindError::UnknownParamSlot { slot, slots } => {
                Error::UnknownParamSlot { slot, slots }
            }
            RebindError::NonFiniteParam { slot } => Error::NonFiniteParam { slot },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::BitstringLength { expected: 5, got: 3 }, "length 3"),
            (Error::InvalidBit { qubit: 2, value: 7 }, "qubit 2"),
            (Error::OpenQubitOutOfRange { qubit: 9, num_qubits: 4 }, "out of range"),
            (Error::DuplicateOpenQubit { qubit: 1 }, "more than once"),
            (
                Error::OutputShapeMismatch { compiled: "open", requested: "amplitude" },
                "output shape",
            ),
            (
                Error::MemoryBudgetExceeded { predicted_bytes: 4096, budget_bytes: 1024 },
                "exceeds the 1024-byte budget",
            ),
            (Error::UnknownParamSlot { slot: 6, slots: 3 }, "slot 6"),
            (Error::NonFiniteParam { slot: 2 }, "non-finite"),
            (Error::ZeroAmplitudeDistribution, "all-zero"),
            (Error::ExecutionPanic("index out of bounds".into()), "panicked"),
            (Error::Internal("oops".into()), "oops"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn panic_payloads_convert_to_typed_errors() {
        let caught = std::panic::catch_unwind(|| panic!("static str payload")).unwrap_err();
        assert_eq!(Error::from_panic(caught), Error::ExecutionPanic("static str payload".into()));
        let caught = std::panic::catch_unwind(|| panic!("formatted {} payload", 42)).unwrap_err();
        assert_eq!(Error::from_panic(caught), Error::ExecutionPanic("formatted 42 payload".into()));
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        assert_eq!(
            Error::from_panic(caught),
            Error::ExecutionPanic("non-string panic payload".into())
        );
    }

    #[test]
    fn rebind_errors_convert() {
        let e: Error = RebindError::BitstringLength { expected: 2, got: 1 }.into();
        assert_eq!(e, Error::BitstringLength { expected: 2, got: 1 });
        let e: Error = RebindError::InvalidBit { qubit: 0, value: 3 }.into();
        assert_eq!(e, Error::InvalidBit { qubit: 0, value: 3 });
        let e: Error = RebindError::UnknownParamSlot { slot: 4, slots: 1 }.into();
        assert_eq!(e, Error::UnknownParamSlot { slot: 4, slots: 1 });
        let e: Error = RebindError::NonFiniteParam { slot: 0 }.into();
        assert_eq!(e, Error::NonFiniteParam { slot: 0 });
    }
}
