//! Back-compat simulator facade.
//!
//! [`Simulator`] predates the compile-once / execute-many [`Engine`] API and
//! is kept as a thin shim over it: every method compiles through the
//! engine's plan cache (so repeated calls of the same output shape no longer
//! re-run the planner) and executes on the engine's persistent worker pool.
//! Errors that the engine reports as [`crate::Error`] values surface here as
//! panics, matching the facade's historical contract. New code should use
//! [`Engine`] directly.

use crate::engine::Engine;
use crate::executor::{ExecutionStats, ExecutorConfig};
use crate::planner::{PlannerConfig, SimulationPlan};
use qtn_circuit::{Circuit, OutputSpec};
use qtn_tensor::{Complex64, DenseTensor};

/// A tensor-network quantum circuit simulator with lifetime-based slicing.
///
/// Thin wrapper over [`Engine`] + [`crate::CompiledCircuit`]; see the module
/// docs for the relationship between the two APIs.
#[derive(Debug, Clone)]
pub struct Simulator {
    circuit: Circuit,
    engine: Engine,
    last_stats: Option<ExecutionStats>,
}

impl Simulator {
    /// Create a simulator for a circuit with default configuration.
    pub fn new(circuit: Circuit) -> Self {
        Self { circuit, engine: Engine::new(), last_stats: None }
    }

    /// Replace the planner configuration.
    pub fn with_planner(mut self, planner: PlannerConfig) -> Self {
        self.engine = self.engine.with_planner(planner);
        self
    }

    /// Replace the executor configuration.
    pub fn with_executor(mut self, executor: ExecutorConfig) -> Self {
        self.engine = self.engine.with_executor(executor);
        self
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The engine backing this facade.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Statistics of the most recent execution, if any.
    pub fn last_stats(&self) -> Option<&ExecutionStats> {
        self.last_stats.as_ref()
    }

    /// Build the plan for a given output without executing it (useful for
    /// inspecting complexity, slicing sets and overheads).
    ///
    /// # Panics
    /// Panics if `output` is invalid for the circuit (wrong bitstring
    /// length, bad bit values, out-of-range or duplicate open qubits).
    pub fn plan(&self, output: &OutputSpec) -> SimulationPlan {
        let compiled = self.engine.compile(&self.circuit, output).expect("invalid output spec");
        compiled.plan().clone()
    }

    /// Compute a single amplitude ⟨bits|C|0…0⟩.
    ///
    /// # Panics
    /// Panics if `bits` is invalid for the circuit. Prefer
    /// [`crate::CompiledCircuit::execute_amplitude`] for a fallible variant.
    pub fn amplitude(&mut self, bits: &[u8]) -> Complex64 {
        let compiled = self
            .engine
            .compile(&self.circuit, &OutputSpec::Amplitude(bits.to_vec()))
            .expect("invalid amplitude spec");
        let (value, report) = compiled.execute_amplitude(bits).expect("execution failed");
        self.last_stats = Some(report.stats);
        value
    }

    /// Compute the amplitudes of a whole batch of bitstrings in one batched
    /// execution (see [`crate::CompiledCircuit::execute_amplitudes`]): the
    /// slice-dependent `StemPure` prefix of every subtask is contracted once
    /// and shared across the batch, instead of once per bitstring as a loop
    /// of [`Self::amplitude`] calls would. Bit-identical to that loop.
    ///
    /// # Panics
    /// Panics if any bitstring is invalid for the circuit. Prefer
    /// [`crate::CompiledCircuit::execute_amplitudes`] for a fallible
    /// variant.
    pub fn amplitudes(&mut self, bitstrings: &[Vec<u8>]) -> Vec<Complex64> {
        let template =
            bitstrings.first().cloned().unwrap_or_else(|| vec![0; self.circuit.num_qubits()]);
        let compiled = self
            .engine
            .compile(&self.circuit, &OutputSpec::Amplitude(template))
            .expect("invalid amplitude spec");
        let batch: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();
        let (amplitudes, report) =
            compiled.execute_amplitudes(&batch).expect("batched execution failed");
        self.last_stats = Some(report.stats);
        amplitudes
    }

    /// Compute the tensor of amplitudes over `open` qubits with the remaining
    /// qubits fixed to `fixed` — the "correlated samples" workload. The
    /// returned tensor's axes are ordered by ascending qubit id.
    ///
    /// # Panics
    /// Panics if `fixed`/`open` are invalid for the circuit. Prefer
    /// [`crate::CompiledCircuit::execute_batch`] for a fallible variant.
    pub fn batch_amplitudes(&mut self, fixed: &[u8], open: &[usize]) -> DenseTensor<Complex64> {
        let spec = OutputSpec::Open { fixed: fixed.to_vec(), open: open.to_vec() };
        let compiled = self.engine.compile(&self.circuit, &spec).expect("invalid open-batch spec");
        let (batch, report) = compiled.execute_batch(fixed).expect("execution failed");
        self.last_stats = Some(report.stats);
        batch
    }

    /// Draw `count` correlated samples of the `open` qubits (with the other
    /// qubits fixed to `fixed`) from the exact output distribution, through
    /// [`Engine::sample_bitstrings`]: the whole distribution comes from one
    /// batched execution, never one stem sweep per sampled bitstring.
    ///
    /// # Panics
    /// Panics on invalid input or an all-zero distribution. Prefer
    /// [`Engine::sample_bitstrings`] or [`crate::CompiledCircuit::sample`]
    /// for fallible variants.
    pub fn sample(
        &mut self,
        fixed: &[u8],
        open: &[usize],
        count: usize,
        seed: u64,
    ) -> Vec<Vec<u8>> {
        let (samples, report) = self
            .engine
            .sample_bitstrings(&self.circuit, fixed, open, count, seed)
            .expect("sampling failed");
        self.last_stats = Some(report.stats);
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtn_circuit::{Gate, RqcConfig};
    use qtn_statevector::StateVector;

    #[test]
    fn amplitude_of_ghz_state() {
        let mut c = Circuit::new(3);
        c.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1).push2(Gate::Cnot, 1, 2);
        let mut sim = Simulator::new(c);
        let h = 1.0 / 2f64.sqrt();
        assert!((sim.amplitude(&[0, 0, 0]) - qtn_tensor::c64(h, 0.0)).abs() < 1e-10);
        assert!((sim.amplitude(&[1, 1, 1]) - qtn_tensor::c64(h, 0.0)).abs() < 1e-10);
        assert!(sim.amplitude(&[1, 0, 1]).abs() < 1e-10);
        assert!(sim.last_stats().is_some());
        // The facade now rides the engine's plan cache: three amplitudes of
        // the same shape plan once.
        assert_eq!(sim.engine().plans_built(), 1);
    }

    #[test]
    fn batch_matches_statevector() {
        let circuit = RqcConfig::small(2, 3, 6, 9).build();
        let n = circuit.num_qubits();
        let sv = StateVector::simulate(&circuit);
        let mut sim = Simulator::new(circuit)
            .with_planner(PlannerConfig { target_rank: 8, ..Default::default() });
        let open = vec![1usize, 3usize];
        let batch = sim.batch_amplitudes(&vec![0; n], &open);
        assert_eq!(batch.rank(), 2);
        for b0 in 0..2u8 {
            for b1 in 0..2u8 {
                let mut bits = vec![0u8; n];
                bits[open[0]] = b0;
                bits[open[1]] = b1;
                assert!((batch.get(&[b0, b1]) - sv.amplitude(&bits)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn sampling_distribution_tracks_probabilities() {
        // A Hadamard on one open qubit: both outcomes roughly equally likely.
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0);
        let mut sim = Simulator::new(c);
        let samples = sim.sample(&[0, 0], &[0], 2000, 7);
        assert_eq!(samples.len(), 2000);
        let ones = samples.iter().filter(|s| s[0] == 1).count();
        assert!(ones > 800 && ones < 1200, "biased sampling: {ones}/2000");
    }

    #[test]
    fn batched_amplitudes_match_single_amplitudes_bit_for_bit() {
        let circuit = RqcConfig::small(3, 3, 8, 11).build();
        let n = circuit.num_qubits();
        let mut sim = Simulator::new(circuit)
            .with_planner(PlannerConfig { target_rank: 7, ..Default::default() });
        let bitstrings: Vec<Vec<u8>> =
            (0..8usize).map(|k| (0..n).map(|q| ((k >> (q % 3)) & 1) as u8).collect()).collect();
        let batched = sim.amplitudes(&bitstrings);
        assert_eq!(sim.last_stats().unwrap().amplitudes_in_batch, 8);
        for (bits, &amp) in bitstrings.iter().zip(batched.iter()) {
            assert_eq!(sim.amplitude(bits), amp, "batched shim must match the single path");
        }
        // One plan serves the batch and every single amplitude.
        assert_eq!(sim.engine().plans_built(), 1);
    }

    #[test]
    fn plan_can_be_inspected_without_execution() {
        let circuit = RqcConfig::small(3, 3, 8, 10).build();
        let n = circuit.num_qubits();
        let sim = Simulator::new(circuit)
            .with_planner(PlannerConfig { target_rank: 9, ..Default::default() });
        let plan = sim.plan(&OutputSpec::Amplitude(vec![0; n]));
        assert!(plan.log_cost > 0.0);
        assert!(plan.num_subtasks() >= 1);
    }
}
