//! The simulation planner.
//!
//! Planning happens entirely on the network structure (no tensor data is
//! touched): circuit → tensor network → simplification → contraction-path
//! search → stem extraction → lifetime-based slicing → simulated-annealing
//! refinement. The resulting [`SimulationPlan`] contains everything the
//! executor needs to run the sliced contraction, and everything the
//! benchmark harness needs to report complexities and overheads.

use crate::executor::{BranchCache, BranchSeed, StemExec};
use crate::pool::SharedWorkerPools;
use qtn_circuit::{circuit_to_network, Circuit, NetworkBuild, OutputSpec};
use qtn_slicing::overhead::{sliced_max_rank, slicing_overhead};
use qtn_slicing::{lifetime_slice_finder, refine_slicing, RefinerConfig, SlicingPlan};
use qtn_tensornet::{
    analyze_memory, classify_nodes, defer_projector_joins, extract_stem, greedy_path,
    random_greedy_paths, refine_path, simplify_network, ContractionTree, MemoryPlan,
    NodeClassification, PathConfig, RefineObjective, Stem, TensorNetwork,
};
use std::sync::{Arc, OnceLock};

/// Planner options.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Maximum tensor rank allowed after slicing (log2 of the per-process
    /// memory budget in amplitudes).
    pub target_rank: usize,
    /// Number of randomised greedy path candidates to try (the best by total
    /// cost is kept). 1 = deterministic greedy.
    pub path_candidates: usize,
    /// Whether to run the simulated-annealing refiner on the slicing set.
    pub refine: bool,
    /// Whether to run the adaptive contraction-path refiner (subtree
    /// rotations with the Sunway-aware objective) after the path search.
    pub refine_path: bool,
    /// Whether to run the batching-aware projector-deferral pass after
    /// slicing: cost- and feasibility-neutral subtree rotations that push
    /// projector-dependent joins toward the root of the sliced spine,
    /// shrinking the StemMixed suffix a batched multi-amplitude execution
    /// replays per bitstring (single executions are unaffected — the total
    /// contraction cost never increases).
    pub defer_projector_joins: bool,
    /// Refiner parameters.
    pub refiner: RefinerConfig,
    /// Seed for the randomised path search.
    pub seed: u64,
    /// Optional hard byte budget checked against the plan's *predicted*
    /// peak buffer memory ([`MemoryPlan::peak_bytes`]). `target_rank` only
    /// bounds the largest single tensor; the lifetime analysis predicts the
    /// real per-worker working set, and [`crate::Engine::compile`] rejects
    /// plans exceeding this budget with
    /// [`crate::Error::MemoryBudgetExceeded`]. `None` disables the check.
    pub memory_budget_bytes: Option<u64>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            target_rank: 26,
            path_candidates: 4,
            refine: true,
            refine_path: true,
            defer_projector_joins: true,
            refiner: RefinerConfig::default(),
            seed: 0,
            memory_budget_bytes: None,
        }
    }
}

/// Everything needed to execute a sliced contraction.
#[derive(Debug, Clone)]
pub struct SimulationPlan {
    /// The tensor network with data, as produced from the circuit.
    pub build: NetworkBuild,
    /// The structural graph of the network.
    pub network: TensorNetwork,
    /// Full contraction pair list in SSA vertex ids (simplification prefix +
    /// searched path).
    pub pairs: Vec<(usize, usize)>,
    /// The contraction tree of `pairs`.
    pub tree: ContractionTree,
    /// The stem of the tree.
    pub stem: Stem,
    /// The slicing decision.
    pub slicing: SlicingPlan,
    /// log2 of the un-sliced contraction cost.
    pub log_cost: f64,
    /// Slicing overhead (Eq. 2) of the chosen set on the stem.
    pub overhead: f64,
    /// Per-node slice/override dependency classes of the contraction tree,
    /// driving the executor's stem-only sweep (which contractions run once
    /// per plan, once per execution, or per subtask).
    pub classification: NodeClassification,
    /// Plan-time lifetime analysis of every reuse phase: buffer liveness
    /// intervals, greedy slot assignment by size class and the predicted
    /// peak bytes the pooled executor's buffer traffic is checked against.
    pub memory_plan: MemoryPlan,
    /// Per-worker stem buffer pools, persisted across executions of this
    /// plan (and all its clones) exactly like the branch cache: the second
    /// execution of a compiled circuit allocates no stem buffers at all.
    pub(crate) stem_pools: Arc<SharedWorkerPools>,
    /// Lazily built plan-lifetime cache of Branch-class tensors. Built
    /// exactly once (even under concurrent executions) by the first reusing
    /// execution; clones of the plan *share* the cache (and a build done
    /// through any clone), rather than deep-copying its tensors. Holds the
    /// build `Result` so a failed build is memoized rather than retried.
    pub(crate) branch_cache: Arc<OnceLock<Result<BranchCache, crate::error::Error>>>,
    /// Lazily compiled pooled stem replay (contraction kernels + leaf
    /// slicing recipes). Index-set-only, so it is plan-invariant under
    /// shape-preserving output rebinding and, like the branch cache, built
    /// once and shared by every execution and clone of the plan.
    pub(crate) stem_exec: Arc<OnceLock<Result<Arc<StemExec>, crate::error::Error>>>,
    /// Branch-cache entries surviving a parameter rebind, plus the rebind's
    /// accounting. `None` on freshly planned circuits; set (with a fresh,
    /// empty `branch_cache` cell) by `CompiledCircuit::rebind_parameters`,
    /// and consumed by the next branch-cache build, which then replays only
    /// the invalidated cone on top of the surviving entries.
    pub(crate) branch_seed: Option<Arc<BranchSeed>>,
}

impl SimulationPlan {
    /// Number of independent slice subtasks.
    pub fn num_subtasks(&self) -> usize {
        self.slicing.num_subtasks()
    }

    /// Largest tensor rank any subtask materialises.
    pub fn sliced_max_rank(&self) -> usize {
        sliced_max_rank(&self.stem, &self.slicing.sliced)
    }

    /// The plan-lifetime branch cache, if some execution has built it.
    pub fn branch_cache(&self) -> Option<&BranchCache> {
        self.branch_cache.get().and_then(|r| r.as_ref().ok())
    }

    /// Whether the plan-lifetime branch cache has been built.
    pub fn branch_cache_built(&self) -> bool {
        self.branch_cache().is_some()
    }

    /// The worst per-phase predicted peak buffer memory
    /// ([`MemoryPlan::peak_bytes`]): what a memory budget is checked
    /// against, and what one worker's pool traffic can reach.
    pub fn predicted_peak_bytes(&self) -> u64 {
        self.memory_plan.peak_bytes()
    }

    /// The predicted per-worker peak of a **batched** multi-amplitude
    /// execution's stem sweep ([`MemoryPlan::batched_stem`]): the StemPure
    /// keep set is held across the whole bitstring batch while the
    /// StemMixed suffix replays on top of it, so this can exceed
    /// [`Self::predicted_peak_bytes`]. Exact, like every other phase
    /// prediction.
    pub fn predicted_batched_peak_bytes(&self) -> u64 {
        self.memory_plan.batched_stem.peak_bytes()
    }

    /// Buffers currently retained by the plan's persistent per-worker stem
    /// pools (observability for tests and benchmarks).
    pub fn pooled_buffers_retained(&self) -> usize {
        self.stem_pools.retained_buffers()
    }

    /// Histogram of the GEMM shapes one full reusing execution of this plan
    /// performs, weighted by how often each contraction runs: branch and
    /// frontier contractions once, stem contractions once per slice
    /// subtask. Shapes are derived from the tree's index sets with the
    /// sliced edges stripped — exactly the operand sets the executor
    /// contracts (a sliced edge is fixed to one value everywhere, so it
    /// vanishes from every tensor; GEMM shape depends only on index-set
    /// membership, never axis order). Returns `((m, n, k), count)` pairs
    /// sorted by descending total flops — the real workload the `gemm`
    /// microbenchmark sweeps.
    pub fn gemm_shape_histogram(&self) -> Vec<((usize, usize, usize), u64)> {
        use qtn_tensor::{ContractionSpec, IndexSet};
        use std::collections::HashMap;
        let sliced = &self.slicing.sliced;
        let effective: Vec<IndexSet> = self
            .tree
            .nodes()
            .iter()
            .map(|node| {
                IndexSet::new(
                    node.indices
                        .iter()
                        .copied()
                        .filter(|e| !sliced.contains(e))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let subtasks = self.num_subtasks() as u64;
        let mut hist: HashMap<(usize, usize, usize), u64> = HashMap::new();
        for &(l, r, out) in &self.tree.schedule() {
            let spec = ContractionSpec::new(&effective[l], &effective[r]);
            let weight = if self.classification.class(out).is_stem() { subtasks } else { 1 };
            *hist.entry(spec.gemm_shape()).or_insert(0) += weight;
        }
        let mut shapes: Vec<((usize, usize, usize), u64)> = hist.into_iter().collect();
        shapes.sort_by_key(|&((m, n, k), count)| {
            (
                std::cmp::Reverse(qtn_tensor::gemm::gemm_flops(m, n, k).saturating_mul(count)),
                m,
                n,
                k,
            )
        });
        shapes
    }
}

/// Plan the simulation of a circuit for the given output specification.
pub fn plan_simulation(
    circuit: &Circuit,
    output: &OutputSpec,
    config: &PlannerConfig,
) -> SimulationPlan {
    let build = circuit_to_network(circuit, output);
    let network = TensorNetwork::from_build(&build);

    // Simplification prefix.
    let mut work = network.clone();
    let mut pairs = simplify_network(&mut work);

    // Path search on the simplified network.
    if config.path_candidates <= 1 {
        pairs.extend(greedy_path(&mut work, &PathConfig { temperature: 0.0, seed: config.seed }));
    } else {
        let candidates = random_greedy_paths(&work, config.path_candidates, config.seed);
        let (_, best_pairs) = candidates.into_iter().next().expect("no path candidates");
        pairs.extend(best_pairs);
    }

    let mut tree = ContractionTree::from_pairs(&network, &pairs);
    if config.refine_path {
        // Adaptive path refinement (the paper's third contribution): subtree
        // rotations that never increase the cost and prefer LDM-friendly
        // absorptions.
        let (refined_pairs, _report) =
            refine_path(&tree, RefineObjective::SunwayAdaptive { ldm_rank: 13 }, 4);
        pairs = refined_pairs;
        tree = ContractionTree::from_pairs(&network, &pairs);
    }
    let mut stem = extract_stem(&tree);

    // Slice with the lifetime finder and optionally refine. Open (output)
    // indices may be sliced too: the executor *stacks* those subtask results
    // into the output tensor instead of summing them, exactly as the paper
    // stores its rank-53 output sliced on disk (§3.3).
    let mut slicing = lifetime_slice_finder(&stem, config.target_rank);
    if config.refine {
        slicing = refine_slicing(&stem, &slicing, &config.refiner);
    }

    let overridable: Vec<usize> = build.projector_leaves.iter().map(|&(_, node)| node).collect();

    // Batching-aware deferral: with the slicing set fixed, re-associate
    // cost-degenerate contractions so projector-dependent subtrees join the
    // sliced spine as late as possible. Strictly shrinks the StemMixed
    // suffix batched executions replay per bitstring; never increases the
    // total cost and never loosens slicing feasibility.
    if config.defer_projector_joins && !slicing.sliced.is_empty() && !overridable.is_empty() {
        let (deferred_pairs, _report) =
            defer_projector_joins(&tree, &slicing.sliced, &overridable, 4);
        pairs = deferred_pairs;
        tree = ContractionTree::from_pairs(&network, &pairs);
        stem = extract_stem(&tree);
    }

    let log_cost = tree.total_log_cost();
    let overhead = slicing_overhead(&stem, &slicing.sliced);

    // Classify every tree node by what its subtree depends on: the sliced
    // edges (replayed per subtask), the rebindable output projectors
    // (contracted once per execution or per bitstring) or neither
    // (contracted once per plan). Structure-only, like the rest of planning.
    let classification =
        classify_nodes(&tree, &slicing.sliced, &overridable, &build.param_leaf_vertices());

    // Lifetime analysis: first/last use of every intermediate, slot
    // assignment and predicted peak bytes per reuse phase. Structure-only,
    // and exact — the pooled executor replays the same acquire/release
    // sequence at runtime.
    let memory_plan = analyze_memory(&tree, &classification, &slicing.sliced);

    SimulationPlan {
        build,
        network,
        pairs,
        tree,
        stem,
        slicing,
        log_cost,
        overhead,
        classification,
        memory_plan,
        branch_cache: Arc::new(OnceLock::new()),
        stem_exec: Arc::new(OnceLock::new()),
        stem_pools: Arc::new(SharedWorkerPools::default()),
        branch_seed: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtn_circuit::RqcConfig;

    fn small_circuit(cycles: usize, seed: u64) -> Circuit {
        RqcConfig::small(3, 3, cycles, seed).build()
    }

    #[test]
    fn plan_for_closed_amplitude() {
        let c = small_circuit(8, 1);
        let output = OutputSpec::Amplitude(vec![0; c.num_qubits()]);
        let cfg = PlannerConfig { target_rank: 10, ..Default::default() };
        let plan = plan_simulation(&c, &output, &cfg);
        assert!(plan.log_cost > 0.0);
        assert!(plan.overhead >= 1.0 - 1e-9);
        assert!(plan.sliced_max_rank() <= 10);
        assert!(plan.num_subtasks() >= 1);
        assert_eq!(plan.tree.node(plan.tree.root()).rank(), 0);
    }

    #[test]
    fn loose_target_means_no_slicing() {
        let c = small_circuit(6, 2);
        let output = OutputSpec::Amplitude(vec![0; c.num_qubits()]);
        let cfg = PlannerConfig { target_rank: 40, ..Default::default() };
        let plan = plan_simulation(&c, &output, &cfg);
        assert!(plan.slicing.is_empty());
        assert_eq!(plan.num_subtasks(), 1);
        assert!((plan.overhead - 1.0).abs() < 1e-9);
    }

    #[test]
    fn open_output_networks_can_be_planned() {
        let c = small_circuit(8, 3);
        let n = c.num_qubits();
        let output = OutputSpec::Open { fixed: vec![0; n], open: vec![0, 1, 2] };
        let cfg = PlannerConfig { target_rank: 8, ..Default::default() };
        let plan = plan_simulation(&c, &output, &cfg);
        let open: Vec<qtn_tensor::IndexId> = plan.network.open_indices();
        assert_eq!(open.len(), 3);
        // The root of the tree carries exactly the open indices.
        let mut root_idx = plan.tree.node(plan.tree.root()).indices.clone();
        root_idx.sort_unstable();
        let mut open_sorted = open.clone();
        open_sorted.sort_unstable();
        assert_eq!(root_idx, open_sorted);
        assert!(plan.sliced_max_rank() <= 8);
    }

    #[test]
    fn tighter_targets_slice_more() {
        let c = small_circuit(10, 4);
        let output = OutputSpec::Amplitude(vec![0; c.num_qubits()]);
        let loose =
            plan_simulation(&c, &output, &PlannerConfig { target_rank: 14, ..Default::default() });
        let tight =
            plan_simulation(&c, &output, &PlannerConfig { target_rank: 9, ..Default::default() });
        assert!(tight.slicing.len() >= loose.slicing.len());
    }

    #[test]
    fn refinement_does_not_violate_feasibility() {
        let c = small_circuit(10, 5);
        let output = OutputSpec::Amplitude(vec![0; c.num_qubits()]);
        for refine in [false, true] {
            let cfg = PlannerConfig { target_rank: 9, refine, ..Default::default() };
            let plan = plan_simulation(&c, &output, &cfg);
            assert!(plan.sliced_max_rank() <= 9, "refine={refine}");
        }
    }

    #[test]
    fn deterministic_planning() {
        let c = small_circuit(8, 6);
        let output = OutputSpec::Amplitude(vec![0; c.num_qubits()]);
        let cfg = PlannerConfig { target_rank: 10, ..Default::default() };
        let a = plan_simulation(&c, &output, &cfg);
        let b = plan_simulation(&c, &output, &cfg);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.slicing, b.slicing);
    }
}
