//! Full-system projection of measured runs (§6.2 of the paper).
//!
//! The paper measures 1024 nodes and projects the whole machine: "Using 1024
//! nodes, a perfect sample or 1M correlated samples can be generated in
//! 10098.5 s. Considering the scaling result, we project that we can reduce
//! the whole time cost using 107,520 nodes (41,932,800 cores) to 96.1 s. The
//! sustainable single-precision performance is projected as 308.6 Pflops."
//! This module performs the same projection from this repository's measured
//! per-subtask cost and the analytic scaling model.

use crate::executor::ExecutionStats;
use qtn_sunway::scaling::{project_full_system, ScalingModel};
use qtn_sunway::SunwayArch;

/// Projection of a measured (or partially measured) run to larger scales.
#[derive(Debug, Clone)]
pub struct RunProjection {
    /// Seconds per subtask assumed by the projection.
    pub seconds_per_subtask: f64,
    /// Total subtasks of the full job.
    pub total_subtasks: usize,
    /// Wall time on the measurement scale (`measured_nodes`).
    pub measured_nodes: usize,
    /// Projected wall time on the measurement scale.
    pub time_at_measured_scale: f64,
    /// Projected wall time on the full system.
    pub time_full_system: f64,
    /// Projected sustained flops/s on the full system.
    pub sustained_flops_full_system: f64,
    /// Fraction of the full system's peak.
    pub efficiency_full_system: f64,
}

/// Project a run from executor statistics.
///
/// `flops_per_subtask` is the floating point work of one subtask (taken from
/// the plan or measured), `total_subtasks` the size of the full sweep, and
/// `measured_nodes` the scale the paper-style intermediate figure is quoted
/// at (1024 in the paper).
pub fn project_run(
    arch: &SunwayArch,
    stats: &ExecutionStats,
    flops_per_subtask: f64,
    total_subtasks: usize,
    measured_nodes: usize,
) -> RunProjection {
    // Use the executor's sweep-phase figure rather than re-deriving from
    // wall_seconds: with reuse enabled, wall time folds in the one-off
    // branch/frontier cache builds, which must not be extrapolated across
    // the full sweep.
    let seconds_per_subtask = stats.seconds_per_subtask;
    let model = ScalingModel::new(seconds_per_subtask, 8.0 * (1 << 20) as f64);
    let time_at_measured = model.strong_time(total_subtasks, measured_nodes);
    let total_flops = flops_per_subtask * total_subtasks as f64;
    let projection = project_full_system(arch, time_at_measured, measured_nodes, total_flops);
    RunProjection {
        seconds_per_subtask,
        total_subtasks,
        measured_nodes,
        time_at_measured_scale: time_at_measured,
        time_full_system: projection.time,
        sustained_flops_full_system: projection.sustained_flops,
        efficiency_full_system: projection.efficiency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_stats(wall: f64, subtasks: usize, workers: usize) -> ExecutionStats {
        ExecutionStats {
            subtasks_run: subtasks,
            subtasks_total: subtasks,
            wall_seconds: wall,
            seconds_per_subtask: wall * workers as f64 / subtasks as f64,
            workers,
            ..ExecutionStats::default()
        }
    }

    #[test]
    fn projection_scales_inversely_with_nodes() {
        let arch = SunwayArch::sw26010pro();
        let stats = fake_stats(10.0, 64, 8);
        let p = project_run(&arch, &stats, 1e12, 1 << 20, 1024);
        assert!(p.time_full_system < p.time_at_measured_scale);
        let ratio = p.time_at_measured_scale / p.time_full_system;
        let expected = arch.projection_nodes as f64 / 1024.0;
        assert!((ratio - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn sustained_flops_consistent_with_time() {
        let arch = SunwayArch::sw26010pro();
        let stats = fake_stats(5.0, 32, 4);
        let flops_per_subtask = 2e12;
        let total_subtasks = 1 << 16;
        let p = project_run(&arch, &stats, flops_per_subtask, total_subtasks, 1024);
        let expected = flops_per_subtask * total_subtasks as f64 / p.time_full_system;
        assert!((p.sustained_flops_full_system - expected).abs() / expected < 1e-9);
        assert!(p.efficiency_full_system > 0.0 && p.efficiency_full_system <= 1.0);
    }

    #[test]
    fn zero_subtasks_do_not_divide_by_zero() {
        let arch = SunwayArch::sw26010pro();
        let stats = ExecutionStats { workers: 1, ..ExecutionStats::default() };
        let p = project_run(&arch, &stats, 0.0, 0, 1024);
        assert_eq!(p.seconds_per_subtask, 0.0);
    }
}
