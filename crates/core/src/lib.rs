//! End-to-end lifetime-based tensor-network simulator.
//!
//! This crate ties the substrates together into the system the paper
//! describes, around a **compile-once / execute-many** API: [`Engine`] runs
//! the planning pipeline (circuit → tensor network → contraction path →
//! stem → lifetime slicing → SA refinement) exactly once per circuit/output
//! shape and hands back a [`CompiledCircuit`]; every execute rebinds only
//! the output-projector leaves and sweeps the `2^|S|` slice subtasks on
//! the engine's persistent [`WorkerPool`], accumulating results with a
//! deterministic reduction and reporting FLOP counts and timings through
//! [`ExecutionReport`]. The sweep is *stem-only* (§4.2 of the paper):
//! slice-invariant branches are pre-contracted once per plan into the
//! [`BranchCache`], projector-dependent frontiers once per execution, and
//! only the slice-dependent stem replays per subtask — bit-identically to
//! a full replay. All fallible operations return [`Error`] instead of
//! panicking. The legacy [`Simulator`] facade survives as a thin shim over
//! the engine.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod executor;
pub mod fault;
pub mod json;
pub mod planner;
pub mod pool;
pub mod projection;
pub mod sampling;
pub mod simulator;
pub mod sync;
pub mod verify;

pub use engine::{CacheStats, CompiledCircuit, Engine, ExecutionReport, OutputShape};
pub use error::Error;
pub use executor::{
    execute_amplitudes_on_pool, execute_on_pool, execute_plan, try_execute_plan, BranchCache,
    ExecutionStats, ExecutorConfig, GemmTally, LeafOverrides, WorkerPool,
};
pub use fault::{FaultPlan, FaultPoint};
pub use planner::{plan_simulation, PlannerConfig, SimulationPlan};
pub use pool::{BufferPool, PoolCounters, SharedWorkerPools};
pub use projection::{project_run, RunProjection};
pub use sampling::sample_bitstrings;
pub use simulator::Simulator;
pub use sync::lock_unpoisoned;
pub use verify::verify_against_statevector;
