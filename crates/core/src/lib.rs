//! End-to-end lifetime-based tensor-network simulator.
//!
//! This crate ties the substrates together into the system the paper
//! describes: the planner converts a circuit into a tensor network, finds a
//! contraction path, extracts the stem, chooses a slicing set with the
//! lifetime-based finder and refines it with simulated annealing; the
//! executor then runs the `2^|S|` slice subtasks in parallel (scoped worker
//! threads standing in for the Sunway processes), accumulates their results
//! with a single reduction, and reports FLOP counts and timings that the
//! machine model turns into full-system projections.

#![warn(missing_docs)]

pub mod executor;
pub mod planner;
pub mod projection;
pub mod sampling;
pub mod simulator;
pub mod verify;

pub use executor::{execute_plan, ExecutionStats, ExecutorConfig};
pub use planner::{PlannerConfig, SimulationPlan, plan_simulation};
pub use projection::{project_run, RunProjection};
pub use sampling::sample_bitstrings;
pub use simulator::Simulator;
pub use verify::verify_against_statevector;
