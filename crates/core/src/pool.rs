//! Size-classed buffer pool backing the zero-allocation stem sweep.
//!
//! Every tensor in a qubit network holds `2^rank` amplitudes, so buffers
//! fall into a small number of exact size classes and recycling is trivial:
//! a freed buffer of length `L` serves any later request for length `L`.
//! [`BufferPool`] keeps one free list per class; the pooled executor
//! acquires every stem-loop buffer (sliced leaves, intermediates, TTGT
//! permutation scratch) from it and releases them when their statically
//! known lifetime ends (see [`qtn_tensornet::lifetime`]). After the first
//! slice subtask warms the free lists, the loop allocates nothing: the
//! plan-time greedy slot assignment proves the working set, and the pool
//! realises it.
//!
//! Pools are **per worker** — each worker thread owns one, so no
//! synchronisation happens inside the subtask loop — and persist across
//! executions on the plan they belong to (like the plan-lifetime branch
//! cache): a [`SharedWorkerPools`] hands each worker its pool at execution
//! start and takes it back at the end, so a compiled circuit's second
//! execution starts with warm free lists and allocates nothing at all.
//! Batched multi-amplitude executions ride the same pools: the StemPure
//! keep set of a subtask simply stays checked out across the whole
//! bitstring batch (the buffers the size classes serve are identical, so a
//! pool warmed by single executions also serves batched ones and vice
//! versa), and the plan's `batched_stem` lifetime phase predicts that
//! traffic exactly.
//!
//! [`PoolCounters`] are per-execution observability: how many buffers were
//! freshly allocated vs recycled, and the exact high-water mark of bytes
//! checked out (`peak_in_flight_bytes`) that executions report as
//! `peak_bytes_in_flight` and tests compare against the plan's predicted
//! peak.

use qtn_tensor::Complex64;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Bytes of one pooled element (a double-precision complex amplitude).
const BYTES_PER_ELEMENT: u64 = std::mem::size_of::<Complex64>() as u64;

/// Per-execution counters of one worker's pool traffic.
///
/// Counters live outside the pool so a pool persisted across executions
/// still yields per-execution numbers: each execution starts from zeroed
/// counters, and a steady-state execution on a warm pool reports
/// `allocated == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Buffers that had to be freshly allocated (no free buffer of the
    /// right size class existed).
    pub allocated: u64,
    /// Buffers served from a free list without touching the allocator.
    pub reused: u64,
    /// Bytes currently checked out of the pool.
    pub in_flight_bytes: u64,
    /// High-water mark of `in_flight_bytes` over the execution.
    pub peak_in_flight_bytes: u64,
}

impl PoolCounters {
    /// Fold another worker's counters into an execution-wide aggregate:
    /// allocation counts add up, peaks take the maximum (workers sweep
    /// subtasks concurrently but each worker's peak is what bounds its own
    /// footprint).
    pub fn merge(&mut self, other: &PoolCounters) {
        self.allocated += other.allocated;
        self.reused += other.reused;
        self.in_flight_bytes += other.in_flight_bytes;
        self.peak_in_flight_bytes = self.peak_in_flight_bytes.max(other.peak_in_flight_bytes);
    }
}

/// A size-classed free-list pool of amplitude buffers.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: BTreeMap<usize, Vec<Vec<Complex64>>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check a buffer of exactly `len` elements out of the pool, recycling
    /// a free one when possible. Recycled buffers contain stale amplitudes;
    /// every consumer fully overwrites them ([`qtn_tensor::DenseTensor::slice_into`]
    /// and the contraction kernels write every element).
    pub fn acquire(&mut self, len: usize, counters: &mut PoolCounters) -> Vec<Complex64> {
        // Chaos hook: a simulated allocation failure panics here and is
        // caught at the execution boundary like any other worker panic.
        if crate::fault::fire(crate::fault::FaultPoint::PoolAlloc) {
            panic!("injected fault: buffer pool allocation failure ({len} elements)");
        }
        let buf = match self.free.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => {
                counters.reused += 1;
                buf
            }
            None => {
                counters.allocated += 1;
                vec![Complex64::ZERO; len]
            }
        };
        counters.in_flight_bytes += len as u64 * BYTES_PER_ELEMENT;
        counters.peak_in_flight_bytes = counters.peak_in_flight_bytes.max(counters.in_flight_bytes);
        buf
    }

    /// Return a buffer to its size class's free list.
    pub fn release(&mut self, buf: Vec<Complex64>, counters: &mut PoolCounters) {
        counters.in_flight_bytes -= buf.len() as u64 * BYTES_PER_ELEMENT;
        self.free.entry(buf.len()).or_default().push(buf);
    }

    /// Number of buffers currently sitting on free lists.
    pub fn free_buffers(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Total bytes held on free lists.
    pub fn free_bytes(&self) -> u64 {
        self.free
            .iter()
            .map(|(len, bufs)| *len as u64 * BYTES_PER_ELEMENT * bufs.len() as u64)
            .sum()
    }

    /// Absorb another pool's free buffers (used when two concurrent
    /// executions checked out pools for the same worker slot).
    fn absorb(&mut self, other: BufferPool) {
        for (len, mut bufs) in other.free {
            self.free.entry(len).or_default().append(&mut bufs);
        }
    }
}

/// The per-worker pools of one plan, shared by every execution (and clone)
/// of that plan — the executor analogue of the plan-lifetime branch cache.
#[derive(Debug, Default)]
pub struct SharedWorkerPools {
    pools: Mutex<Vec<Option<BufferPool>>>,
}

impl SharedWorkerPools {
    /// Take worker `worker`'s pool for the duration of one execution. A
    /// fresh (cold) pool is handed out if none was ever checked in for this
    /// slot or a concurrent execution currently holds it.
    pub fn checkout(&self, worker: usize) -> BufferPool {
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        if pools.len() <= worker {
            pools.resize_with(worker + 1, || None);
        }
        pools[worker].take().unwrap_or_default()
    }

    /// Return worker `worker`'s pool so the next execution starts warm. If a
    /// concurrent execution already returned a pool for this slot, the free
    /// lists are merged.
    pub fn checkin(&self, worker: usize, pool: BufferPool) {
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        if pools.len() <= worker {
            pools.resize_with(worker + 1, || None);
        }
        match &mut pools[worker] {
            Some(existing) => existing.absorb(pool),
            slot @ None => *slot = Some(pool),
        }
    }

    /// Buffers held across executions, summed over all worker slots.
    pub fn retained_buffers(&self) -> usize {
        let pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        pools.iter().flatten().map(BufferPool::free_buffers).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_allocates_cold_and_reuses_warm() {
        let mut pool = BufferPool::new();
        let mut counters = PoolCounters::default();
        let a = pool.acquire(8, &mut counters);
        let b = pool.acquire(8, &mut counters);
        assert_eq!(counters.allocated, 2);
        assert_eq!(counters.reused, 0);
        assert_eq!(counters.in_flight_bytes, 2 * 8 * 16);
        pool.release(a, &mut counters);
        pool.release(b, &mut counters);
        assert_eq!(counters.in_flight_bytes, 0);
        assert_eq!(counters.peak_in_flight_bytes, 2 * 8 * 16);
        let _c = pool.acquire(8, &mut counters);
        assert_eq!(counters.allocated, 2, "warm acquire must not allocate");
        assert_eq!(counters.reused, 1);
    }

    #[test]
    fn size_classes_do_not_mix() {
        let mut pool = BufferPool::new();
        let mut counters = PoolCounters::default();
        let a = pool.acquire(4, &mut counters);
        pool.release(a, &mut counters);
        let b = pool.acquire(8, &mut counters);
        assert_eq!(b.len(), 8);
        assert_eq!(counters.allocated, 2, "a length-4 buffer cannot serve a length-8 request");
        assert_eq!(pool.free_buffers(), 1);
        assert_eq!(pool.free_bytes(), 4 * 16);
    }

    #[test]
    fn peak_tracks_high_water_not_current() {
        let mut pool = BufferPool::new();
        let mut counters = PoolCounters::default();
        let a = pool.acquire(16, &mut counters);
        pool.release(a, &mut counters);
        let b = pool.acquire(2, &mut counters);
        pool.release(b, &mut counters);
        assert_eq!(counters.peak_in_flight_bytes, 16 * 16);
    }

    #[test]
    fn shared_pools_persist_across_checkouts() {
        let shared = SharedWorkerPools::default();
        let mut counters = PoolCounters::default();
        let mut pool = shared.checkout(0);
        let buf = pool.acquire(32, &mut counters);
        pool.release(buf, &mut counters);
        shared.checkin(0, pool);
        assert_eq!(shared.retained_buffers(), 1);
        // The next checkout of the same slot sees the warm free list.
        let mut pool = shared.checkout(0);
        let mut counters2 = PoolCounters::default();
        let _buf = pool.acquire(32, &mut counters2);
        assert_eq!(counters2.allocated, 0);
        assert_eq!(counters2.reused, 1);
    }

    #[test]
    fn concurrent_checkins_merge_free_lists() {
        let shared = SharedWorkerPools::default();
        let mut c = PoolCounters::default();
        let mut first = shared.checkout(1);
        let mut second = shared.checkout(1); // concurrent execution, same slot
        let a = first.acquire(4, &mut c);
        first.release(a, &mut c);
        let b = second.acquire(4, &mut c);
        second.release(b, &mut c);
        shared.checkin(1, first);
        shared.checkin(1, second);
        assert_eq!(shared.retained_buffers(), 2);
    }

    #[test]
    fn counters_merge_adds_counts_and_maxes_peaks() {
        let mut a =
            PoolCounters { allocated: 2, reused: 5, in_flight_bytes: 0, peak_in_flight_bytes: 100 };
        let b =
            PoolCounters { allocated: 1, reused: 3, in_flight_bytes: 0, peak_in_flight_bytes: 250 };
        a.merge(&b);
        assert_eq!(a.allocated, 3);
        assert_eq!(a.reused, 8);
        assert_eq!(a.peak_in_flight_bytes, 250);
    }
}
