//! Deterministic, seeded fault injection for chaos testing.
//!
//! Production failures — a kernel panic mid-contraction, a half-written
//! frame, a connection dying under a reader — are rare and unschedulable,
//! which makes the recovery paths around them untestable by default. This
//! module makes them provokable on demand: a [`FaultPlan`] names a set of
//! **injection points** ([`FaultPoint`]) and, per point, a deterministic
//! firing schedule (`nth` hit, `every` period, `times` cap, and an optional
//! seeded probability). Code on the hot paths asks [`fire`] whether the
//! fault it guards should trigger *now*; the serve layer and the executor
//! thread these checks through their I/O and contraction loops.
//!
//! The plan is installed process-globally, either programmatically
//! ([`install`], used by the chaos test suite) or from the `QTNSIM_FAULTS`
//! environment variable parsed on first use. **When nothing is installed,
//! [`fire`] is a single relaxed atomic load** — the production fast path
//! pays no measurable cost for the instrumentation.
//!
//! # Spec grammar
//!
//! A spec is whitespace- or `;`-separated entries:
//!
//! ```text
//! seed=7 worker_panic:nth=40,every=90,times=3 read_io:nth=2
//! ```
//!
//! - `seed=N` seeds the deterministic probability rolls.
//! - `<point>` alone fires on every hit.
//! - `<point>:k=v,…` with keys `nth` (first firing hit, 1-based, default
//!   1), `every` (repeat period in hits, default 0 = fire only at `nth`),
//!   `times` (total firing cap, default 0 = uncapped), and `prob`
//!   (percentage 0–100; hits on schedule fire only when a splitmix64 roll
//!   of `(seed, point, hit)` lands under it — deterministic for a fixed
//!   seed, default 100).
//!
//! Per-point **hit** and **fire** counters are exported through
//! [`FaultPlan::counts`]; `qtnsim-serve` surfaces them in its stats JSON so
//! a chaos run can prove which faults actually triggered.

use crate::sync::lock_unpoisoned;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};

/// Named fault-injection points threaded through the engine and the
/// serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// A connection reader's next poll fails with a transport error
    /// (simulates the peer dying mid-stream).
    ReadIo,
    /// A writer's next frame write fails outright before any byte is sent.
    WriteIo,
    /// A writer sends only a prefix of the frame's bytes, then fails —
    /// the torn-frame case the desync handling must contain.
    PartialFrame,
    /// A writer stalls before writing (slow-consumer simulation).
    SlowWrite,
    /// A contraction worker panics at the scheduled contraction step.
    WorkerPanic,
    /// A buffer-pool acquisition panics (allocation-failure simulation);
    /// surfaces through the same caught-panic path as [`Self::WorkerPanic`].
    PoolAlloc,
}

impl FaultPoint {
    /// Every point, in stats order.
    pub const ALL: [FaultPoint; 6] = [
        FaultPoint::ReadIo,
        FaultPoint::WriteIo,
        FaultPoint::PartialFrame,
        FaultPoint::SlowWrite,
        FaultPoint::WorkerPanic,
        FaultPoint::PoolAlloc,
    ];

    /// The name used in specs and stats JSON.
    pub const fn name(self) -> &'static str {
        match self {
            FaultPoint::ReadIo => "read_io",
            FaultPoint::WriteIo => "write_io",
            FaultPoint::PartialFrame => "partial_frame",
            FaultPoint::SlowWrite => "slow_write",
            FaultPoint::WorkerPanic => "worker_panic",
            FaultPoint::PoolAlloc => "pool_alloc",
        }
    }

    fn index(self) -> usize {
        self as usize
    }

    fn parse(name: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// One point's firing schedule (see the module docs for the grammar).
#[derive(Debug, Clone, Copy)]
struct FaultRule {
    /// 1-based hit at which the rule first fires.
    nth: u64,
    /// Repeat period in hits after `nth`; 0 fires only at `nth`.
    every: u64,
    /// Total firing cap; 0 is uncapped.
    times: u64,
    /// Percentage chance an on-schedule hit actually fires (seeded,
    /// deterministic).
    prob: u8,
}

impl Default for FaultRule {
    fn default() -> Self {
        FaultRule { nth: 1, every: 0, times: 0, prob: 100 }
    }
}

/// A parsed, installable set of fault rules with per-point hit/fire
/// counters (see the module docs).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: [Option<FaultRule>; 6],
    hits: [AtomicU64; 6],
    fires: [AtomicU64; 6],
}

impl FaultPlan {
    /// Parse a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut rules: [Option<FaultRule>; 6] = [None; 6];
        for entry in spec.split(|c: char| c.is_whitespace() || c == ';') {
            if entry.is_empty() {
                continue;
            }
            if let Some(value) = entry.strip_prefix("seed=") {
                seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                continue;
            }
            let (name, opts) = match entry.split_once(':') {
                Some((name, opts)) => (name, opts),
                None => (entry, ""),
            };
            let point =
                FaultPoint::parse(name).ok_or_else(|| format!("unknown fault point {name:?}"))?;
            let mut rule = FaultRule::default();
            // A bare point name fires on every hit.
            if opts.is_empty() {
                rule.every = 1;
            }
            for opt in opts.split(',').filter(|o| !o.is_empty()) {
                let (key, value) =
                    opt.split_once('=').ok_or_else(|| format!("expected key=value in {opt:?}"))?;
                let parsed: u64 = value.parse().map_err(|_| format!("bad value in {opt:?}"))?;
                match key {
                    "nth" => rule.nth = parsed.max(1),
                    "every" => rule.every = parsed,
                    "times" => rule.times = parsed,
                    "prob" => {
                        if parsed > 100 {
                            return Err(format!("prob {parsed} exceeds 100"));
                        }
                        rule.prob = parsed as u8;
                    }
                    other => return Err(format!("unknown rule key {other:?}")),
                }
            }
            rules[point.index()] = Some(rule);
        }
        Ok(FaultPlan {
            seed,
            rules,
            hits: std::array::from_fn(|_| AtomicU64::new(0)),
            fires: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }

    /// The seed the probability rolls use.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Record one hit at `point` and decide whether its fault fires.
    pub fn should_fire(&self, point: FaultPoint) -> bool {
        let i = point.index();
        let Some(rule) = self.rules[i] else { return false };
        let hit = self.hits[i].fetch_add(1, Ordering::Relaxed) + 1;
        if hit < rule.nth {
            return false;
        }
        let on_schedule = if rule.every == 0 {
            hit == rule.nth
        } else {
            (hit - rule.nth).is_multiple_of(rule.every)
        };
        if !on_schedule {
            return false;
        }
        if rule.prob < 100 {
            let roll =
                splitmix64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ hit) % 100;
            if roll >= rule.prob as u64 {
                return false;
            }
        }
        if rule.times == 0 {
            self.fires[i].fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // Claim a firing slot atomically so concurrent hits never overshoot
        // the cap (and the fire counter never counts rejected claims).
        let mut fired = self.fires[i].load(Ordering::Relaxed);
        loop {
            if fired >= rule.times {
                return false;
            }
            match self.fires[i].compare_exchange(
                fired,
                fired + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => fired = actual,
            }
        }
    }

    /// Per-point `(point, hits, fires)` counters, in [`FaultPoint::ALL`]
    /// order, restricted to points the plan has rules for.
    pub fn counts(&self) -> Vec<(FaultPoint, u64, u64)> {
        FaultPoint::ALL
            .into_iter()
            .filter(|p| self.rules[p.index()].is_some())
            .map(|p| {
                let i = p.index();
                (p, self.hits[i].load(Ordering::Relaxed), self.fires[i].load(Ordering::Relaxed))
            })
            .collect()
    }

    /// Total fires across every point.
    pub fn total_fires(&self) -> u64 {
        self.fires.iter().map(|f| f.load(Ordering::Relaxed)).sum()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Global installation
// ---------------------------------------------------------------------------

/// Fast-path gate: `false` means no plan is installed and [`fire`] returns
/// immediately.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn set(plan: Option<Arc<FaultPlan>>) {
    let mut slot = lock_unpoisoned(slot());
    ENABLED.store(plan.is_some(), Ordering::Release);
    *slot = plan;
}

/// Parse `QTNSIM_FAULTS` once, installing the env plan if it is set and
/// valid. An invalid spec is reported and ignored rather than panicking —
/// fault injection must never be the thing that takes a service down.
fn env_init() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let Ok(spec) = std::env::var("QTNSIM_FAULTS") else { return };
        if spec.trim().is_empty() {
            return;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => set(Some(Arc::new(plan))),
            Err(e) => eprintln!("qtnsim: ignoring invalid QTNSIM_FAULTS spec: {e}"),
        }
    });
}

/// Install a fault plan process-globally (replacing the env-installed one,
/// if any), or clear it with `None`. Used by chaos tests; production code
/// never calls this.
pub fn install(plan: Option<FaultPlan>) {
    env_init();
    set(plan.map(Arc::new));
}

/// The currently installed plan, if any (installing `QTNSIM_FAULTS` lazily
/// on first use).
pub fn installed() -> Option<Arc<FaultPlan>> {
    env_init();
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    lock_unpoisoned(slot()).clone()
}

/// Record a hit at `point` against the installed plan and report whether
/// the fault it guards should trigger now. Always `false` — one relaxed
/// atomic load — when no plan is installed.
pub fn fire(point: FaultPoint) -> bool {
    env_init();
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    match installed() {
        Some(plan) => plan.should_fire(point),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=7 worker_panic:nth=40,every=90,times=3;read_io:nth=2 slow_write",
        )
        .expect("valid spec");
        assert_eq!(plan.seed(), 7);
        let counts = plan.counts();
        let points: Vec<_> = counts.iter().map(|(p, _, _)| *p).collect();
        assert_eq!(
            points,
            vec![FaultPoint::ReadIo, FaultPoint::SlowWrite, FaultPoint::WorkerPanic]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("bogus_point:nth=1").is_err());
        assert!(FaultPlan::parse("read_io:nth=x").is_err());
        assert!(FaultPlan::parse("read_io:wat=1").is_err());
        assert!(FaultPlan::parse("read_io:prob=101").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
    }

    #[test]
    fn nth_every_times_schedule() {
        let plan = FaultPlan::parse("worker_panic:nth=3,every=2,times=2").unwrap();
        let fired: Vec<bool> = (0..10).map(|_| plan.should_fire(FaultPoint::WorkerPanic)).collect();
        // Hits 3 and 5 fire; the times=2 cap stops hit 7 and beyond.
        assert_eq!(fired, vec![false, false, true, false, true, false, false, false, false, false]);
        let (_, hits, fires) = plan.counts()[0];
        assert_eq!((hits, fires), (10, 2));
        assert_eq!(plan.total_fires(), 2);
    }

    #[test]
    fn nth_without_every_fires_once() {
        let plan = FaultPlan::parse("read_io:nth=2").unwrap();
        let fired: Vec<bool> = (0..5).map(|_| plan.should_fire(FaultPoint::ReadIo)).collect();
        assert_eq!(fired, vec![false, true, false, false, false]);
    }

    #[test]
    fn bare_point_fires_every_hit() {
        let plan = FaultPlan::parse("slow_write").unwrap();
        assert!((0..4).all(|_| plan.should_fire(FaultPoint::SlowWrite)));
    }

    #[test]
    fn unruled_points_never_fire() {
        let plan = FaultPlan::parse("read_io").unwrap();
        assert!(!plan.should_fire(FaultPoint::WorkerPanic));
        assert!(!plan.should_fire(FaultPoint::PoolAlloc));
    }

    #[test]
    fn prob_is_deterministic_for_a_seed() {
        let roll = |seed: u64| {
            let plan = FaultPlan::parse(&format!("seed={seed} write_io:every=1,prob=50")).unwrap();
            (0..64).map(|_| plan.should_fire(FaultPoint::WriteIo)).collect::<Vec<_>>()
        };
        assert_eq!(roll(11), roll(11), "same seed, same schedule");
        assert_ne!(roll(11), roll(12), "different seeds diverge");
        let fires = roll(11).iter().filter(|&&f| f).count();
        assert!(fires > 10 && fires < 54, "prob=50 fired {fires}/64 times");
    }

    #[test]
    fn global_install_gates_fire() {
        // Uses a point no core test path ever checks, so running in
        // parallel with the executor's tests is safe.
        install(Some(FaultPlan::parse("partial_frame:every=1").unwrap()));
        assert!(fire(FaultPoint::PartialFrame));
        let installed = installed().expect("plan installed");
        assert_eq!(installed.counts()[0].2, 1);
        install(None);
        assert!(!fire(FaultPoint::PartialFrame), "cleared plan must not fire");
    }
}
