//! The crate-wide poisoned-lock policy.
//!
//! Every `Mutex` in the engine and the serving layer guards state that
//! stays consistent under panic: LRU plan-cache maps, buffer-pool free
//! lists, metric aggregates, and batch queues are all updated in place
//! with no multi-step invariants that a mid-update unwind could tear.
//! Poisoning therefore carries no information worth dying over — but a
//! propagated `PoisonError` would turn one caught panic into a permanent
//! wedge for every later request touching the same lock. [`lock_unpoisoned`]
//! is the uniform recovery: take the guard, poisoned or not.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock a mutex, recovering the guard even if a previous holder panicked.
///
/// Use this instead of `.lock().unwrap()`/`.expect(..)` for any lock whose
/// guarded state remains valid across an unwind (see the module docs) —
/// one caught panic must never poison-wedge later requests.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn recovers_a_poisoned_lock() {
        let lock = Mutex::new(41);
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock.lock().unwrap();
            panic!("poison it");
        }));
        assert!(poison.is_err());
        assert!(lock.is_poisoned());
        *lock_unpoisoned(&lock) += 1;
        assert_eq!(*lock_unpoisoned(&lock), 42);
    }
}
