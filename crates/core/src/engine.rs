//! The compile-once / execute-many engine.
//!
//! The paper's workload plans a contraction **once** and then sweeps millions
//! of slice subtasks and correlated samples over it. [`Engine`] matches that
//! cost model: [`Engine::compile`] runs the expensive planning pipeline (path
//! search + lifetime slicing + SA refinement) and returns a
//! [`CompiledCircuit`]; every execute on the compiled circuit only *rebinds*
//! the output-projector leaf tensors (see
//! [`qtn_circuit::NetworkBuild::rebind_output`]) and replays the plan on the
//! engine's persistent worker pool — no re-planning, no thread spawning.
//!
//! Plans are memoized in an LRU cache keyed by circuit fingerprint, planner
//! configuration and output *shape* (`Amplitude` vs the set of open qubits):
//! because only the projector leaves depend on the concrete bits, one cached
//! plan serves every bitstring of that shape.
//!
//! On top of plan reuse sits **partial-contraction reuse** (the paper's
//! stem-only sweep, §4.2): contractions that depend on neither a sliced
//! edge nor an output projector are performed once in the plan's lifetime
//! and memoized in its branch cache; contractions that depend only on the
//! projectors are redone once per execute (they absorb the rebound bits);
//! and only the stem — the slice-dependent spine — is replayed for each of
//! the `2^|S|` subtasks. Rebinding never invalidates the branch cache (the
//! cached tensors are projector-independent by construction), which is why
//! the first execute of a compiled circuit typically does measurably more
//! work than every later one. [`ExecutionReport::branch_cache_hit`] and
//! [`ExecutionStats::branch_flops_reused`] make the effect observable.
//!
//! ```
//! use qtnsim_core::{Engine, PlannerConfig};
//! use qtn_circuit::{Circuit, Gate, OutputSpec};
//!
//! let mut circuit = Circuit::new(2);
//! circuit.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1);
//! let engine = Engine::new();
//! let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0, 0])).unwrap();
//! let (a00, first) = compiled.execute_amplitude(&[0, 0]).unwrap();
//! let (a11, report) = compiled.execute_amplitude(&[1, 1]).unwrap();
//! assert!((a00 - a11).abs() < 1e-12);
//! assert!(report.stats.subtasks_run >= 1);
//! assert_eq!(engine.plans_built(), 1); // planned once, executed twice
//! assert!(!first.branch_cache_hit); // the first execute builds the branch cache…
//! assert!(report.branch_cache_hit); // …every later execute reuses it
//! assert_eq!(report.stats.branch_contractions, 0);
//! ```

use crate::error::Error;
use crate::executor::{
    execute_on_pool, BranchSeed, ExecutionStats, ExecutorConfig, LeafOverrides, WorkerPool,
};
use crate::planner::{plan_simulation, PlannerConfig, SimulationPlan};
use crate::sampling::sample_bitstrings;
use qtn_circuit::{Circuit, OutputSpec, ParamSlot};
use qtn_tensor::{Complex64, DenseTensor, IndexSet};
use qtn_tensornet::ordinal_words;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What one execution did, returned alongside every result. Replaces the old
/// `last_stats` mutable side-channel, so executes take `&self` and can run
/// concurrently.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Executor measurements (subtasks, per-phase flops, wall time, workers).
    pub stats: ExecutionStats,
    /// Whether the plan behind this execution came from the engine's cache.
    pub plan_cache_hit: bool,
    /// Whether the plan-lifetime branch cache already existed when this
    /// execution started. With reuse enabled (the default), it is `false`
    /// only until some execution builds the cache — typically just the
    /// first — and `true` afterwards. Note the cache belongs to the *plan*,
    /// which engines share through the plan cache and across
    /// [`Engine::with_executor`] reconfigurations: an execution with reuse
    /// disabled never builds the cache itself, but can still report `true`
    /// if another execution of the shared plan built it.
    pub branch_cache_hit: bool,
}

/// The output *shape* a circuit was compiled for: the part of the
/// [`OutputSpec`] that determines network structure. Concrete bit values are
/// rebound per execution and deliberately not part of the shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OutputShape {
    /// A single closed amplitude; any bitstring executes on the same plan.
    Amplitude,
    /// A batch over the given open qubits (sorted); any `fixed` projection
    /// of the remaining qubits executes on the same plan.
    Open(Vec<usize>),
}

impl OutputShape {
    fn of(spec: &OutputSpec) -> Self {
        match spec {
            OutputSpec::Amplitude(_) => OutputShape::Amplitude,
            OutputSpec::Open { open, .. } => {
                let mut open = open.clone();
                open.sort_unstable();
                OutputShape::Open(open)
            }
        }
    }

    fn name(&self) -> &'static str {
        match self {
            OutputShape::Amplitude => "amplitude",
            OutputShape::Open(_) => "open-batch",
        }
    }
}

#[derive(PartialEq, Eq, Hash, Clone)]
struct PlanKey {
    /// [`Circuit::fingerprint`] of the compiled circuit.
    fingerprint: u64,
    /// Hash of the [`PlannerConfig`] the plan was built under — two engines
    /// sharing one cache but configured differently never trade plans.
    planner: u64,
    shape: OutputShape,
}

/// A tiny LRU: most-recently-used entry at the front. One of these per cache
/// shard; with the default single shard it is the whole plan cache.
struct PlanCache {
    capacity: usize,
    entries: Vec<(PlanKey, Arc<SimulationPlan>)>,
}

impl PlanCache {
    fn get(&mut self, key: &PlanKey) -> Option<Arc<SimulationPlan>> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        let plan = Arc::clone(&entry.1);
        self.entries.insert(0, entry);
        Some(plan)
    }

    /// Insert (or refresh) an entry; returns how many entries capacity
    /// pressure evicted. Replacing an existing entry for the same key is a
    /// refresh, not an eviction.
    fn insert(&mut self, key: PlanKey, plan: Arc<SimulationPlan>) -> usize {
        self.entries.retain(|(k, _)| k != &key);
        self.entries.insert(0, (key, plan));
        let evicted = self.entries.len().saturating_sub(self.capacity.max(1));
        self.entries.truncate(self.capacity.max(1));
        evicted
    }
}

/// Plan-cache observability counters, as reported by
/// [`Engine::cache_stats`]. All counters are cumulative over the engine's
/// lifetime and shared across clones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Compiles served from the plan cache without replanning.
    pub hits: usize,
    /// Compiles that had to run the full planning pipeline.
    pub misses: usize,
    /// Plans dropped from the cache by capacity pressure (LRU eviction or a
    /// capacity shrink), summed over all shards.
    pub evictions: usize,
}

impl CacheStats {
    /// Render the counters as a JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        let mut obj = crate::json::JsonObject::new();
        obj.field_u64("plan_cache_hits", self.hits as u64)
            .field_u64("plan_cache_misses", self.misses as u64)
            .field_u64("plan_cache_evictions", self.evictions as u64);
        obj.finish()
    }
}

/// The cache/counter state of an engine, shared across clones and compiled
/// circuits. Kept separate from the worker pool so reconfiguring the pool
/// never discards cached plans or resets counters.
///
/// The plan cache is split into independently locked shards selected by
/// circuit fingerprint, so concurrent compiles of *different* circuits (a
/// server's acceptor threads) never contend on one mutex. The default is a
/// single shard, which preserves exact global LRU semantics.
struct EngineState {
    shards: Vec<Mutex<PlanCache>>,
    plans_built: AtomicUsize,
    cache_hits: AtomicUsize,
    cache_misses: AtomicUsize,
    cache_evictions: AtomicUsize,
}

impl EngineState {
    fn with_shards(shards: usize, capacity_per_shard: usize) -> Self {
        let shards = shards.max(1);
        EngineState {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(PlanCache { capacity: capacity_per_shard, entries: Vec::new() })
                })
                .collect(),
            plans_built: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            cache_misses: AtomicUsize::new(0),
            cache_evictions: AtomicUsize::new(0),
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<PlanCache> {
        // FNV-1a's low bits cluster badly for structurally similar circuits
        // (a family of same-shape RQCs can land ≡ each other mod the shard
        // count), so finalize with a splitmix64-style mix before reducing.
        let mut x = fingerprint;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
        &self.shards[(x % self.shards.len() as u64) as usize]
    }
}

/// A compile-once / execute-many simulation engine.
///
/// Owns a persistent [`WorkerPool`] and an LRU plan cache. Cloning an engine
/// is cheap and shares both. See the [module docs](self) for an example.
#[derive(Clone)]
pub struct Engine {
    planner: PlannerConfig,
    executor: ExecutorConfig,
    pool: Arc<WorkerPool>,
    state: Arc<EngineState>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("planner", &self.planner)
            .field("executor", &self.executor)
            .field("pool", &self.pool)
            .field("plans_built", &self.plans_built())
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

/// Default number of plans the engine keeps cached.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 16;

/// FNV-1a over a byte stream; used to fold configurations into cache keys.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for byte in bytes {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Engine {
    /// Create an engine with default planner/executor configuration.
    pub fn new() -> Self {
        Self::with_configs(PlannerConfig::default(), ExecutorConfig::default())
    }

    /// Create an engine with explicit configurations.
    pub fn with_configs(planner: PlannerConfig, executor: ExecutorConfig) -> Self {
        let state = Arc::new(EngineState::with_shards(1, DEFAULT_PLAN_CACHE_CAPACITY));
        Self {
            planner,
            executor: executor.clone(),
            pool: Arc::new(WorkerPool::new(executor.workers)),
            state,
        }
    }

    /// A hash of the planner configuration, folded into every plan-cache key
    /// so plans built under one configuration are never served to another.
    fn planner_fingerprint(&self) -> u64 {
        // PlannerConfig's Debug output covers every field (f64s print with
        // round-trip precision), making it a faithful value fingerprint.
        // The memory budget is deliberately excluded: it gates `compile`
        // *after* planning and never influences plan construction, so one
        // cached plan serves every budget (each compile re-checks it) —
        // probing budgets or raising one after a rejection never replans.
        let canonical = PlannerConfig { memory_budget_bytes: None, ..self.planner.clone() };
        fnv1a(format!("{canonical:?}").into_bytes())
    }

    /// Replace the planner configuration (builder style). Cached plans are
    /// keyed by configuration, so entries built under the old configuration
    /// remain in the cache (for clones still using it) but will never be
    /// served to this engine.
    pub fn with_planner(mut self, planner: PlannerConfig) -> Self {
        self.planner = planner;
        self
    }

    /// Replace the executor configuration (builder style). Rebuilds the
    /// worker pool if the thread count changed; the plan cache and the
    /// planning counters are untouched (plans are worker-count independent).
    /// Previously compiled circuits keep the pool they were compiled with.
    pub fn with_executor(mut self, executor: ExecutorConfig) -> Self {
        if executor.workers != self.executor.workers {
            self.pool = Arc::new(WorkerPool::new(executor.workers));
        }
        self.executor = executor;
        self
    }

    /// Set how many plans the LRU cache retains in total (builder style).
    /// With multiple shards the capacity is split evenly (rounded up, at
    /// least one plan per shard); shrinking below the current population
    /// evicts least-recently-used entries and counts them in
    /// [`cache_stats`](Self::cache_stats).
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        let per_shard = capacity.max(1).div_ceil(self.state.shards.len()).max(1);
        for shard in &self.state.shards {
            let mut cache = crate::sync::lock_unpoisoned(shard);
            cache.capacity = per_shard;
            let evicted = cache.entries.len().saturating_sub(per_shard);
            cache.entries.truncate(per_shard);
            self.state.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        self
    }

    /// Split the plan cache into `shards` independently locked LRU shards
    /// selected by circuit fingerprint (builder style). One shard — the
    /// default — is an exact global LRU; more shards trade eviction
    /// precision for lock-contention-free concurrent compiles of distinct
    /// circuits, the access pattern of a multi-threaded amplitude server.
    ///
    /// Resharding rebuilds the engine's shared state: existing cached plans
    /// are redistributed by fingerprint and all counters carry over, but
    /// clones made *before* this call keep the old state — reshard before
    /// cloning or compiling, as [`crate::Engine::with_executor`] users
    /// reconfigure pools.
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        let shards = shards.max(1);
        let total_capacity: usize =
            self.state.shards.iter().map(|s| crate::sync::lock_unpoisoned(s).capacity).sum();
        let per_shard = total_capacity.max(1).div_ceil(shards).max(1);
        let next = EngineState::with_shards(shards, per_shard);
        next.plans_built.store(self.plans_built(), Ordering::Relaxed);
        next.cache_hits.store(self.state.cache_hits.load(Ordering::Relaxed), Ordering::Relaxed);
        next.cache_misses.store(self.state.cache_misses.load(Ordering::Relaxed), Ordering::Relaxed);
        next.cache_evictions
            .store(self.state.cache_evictions.load(Ordering::Relaxed), Ordering::Relaxed);
        let mut evicted = 0;
        for shard in &self.state.shards {
            let cache = crate::sync::lock_unpoisoned(shard);
            // Iterate oldest-first so re-inserting preserves LRU order
            // (insert places each entry at the front of its new shard).
            for (key, plan) in cache.entries.iter().rev() {
                let mut target = crate::sync::lock_unpoisoned(next.shard(key.fingerprint));
                evicted += target.insert(key.clone(), Arc::clone(plan));
            }
        }
        next.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
        self.state = Arc::new(next);
        self
    }

    /// Number of plan-cache shards (1 unless raised with
    /// [`with_cache_shards`](Self::with_cache_shards)).
    pub fn cache_shards(&self) -> usize {
        self.state.shards.len()
    }

    /// The planner configuration.
    pub fn planner(&self) -> &PlannerConfig {
        &self.planner
    }

    /// The executor configuration.
    pub fn executor(&self) -> &ExecutorConfig {
        &self.executor
    }

    /// How many times the full planning pipeline has run. Plan-cache hits do
    /// not increment this — the counter the reuse tests assert on.
    pub fn plans_built(&self) -> usize {
        self.state.plans_built.load(Ordering::Relaxed)
    }

    /// How many compiles were served from the plan cache.
    pub fn cache_hits(&self) -> usize {
        self.state.cache_hits.load(Ordering::Relaxed)
    }

    /// Cumulative plan-cache observability counters
    /// (hits / misses / evictions), shared across engine clones — the
    /// numbers a serving layer exports as cache metrics.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.state.cache_hits.load(Ordering::Relaxed),
            misses: self.state.cache_misses.load(Ordering::Relaxed),
            evictions: self.state.cache_evictions.load(Ordering::Relaxed),
        }
    }

    /// Validate an output spec against a circuit at the API boundary.
    fn validate(circuit: &Circuit, output: &OutputSpec) -> Result<(), Error> {
        let n = circuit.num_qubits();
        // Entries at open (non-projected) positions are documented as ignored,
        // so they are exempt from bit-value validation.
        let check_bits = |bits: &[u8], open: &[usize]| -> Result<(), Error> {
            if bits.len() != n {
                return Err(Error::BitstringLength { expected: n, got: bits.len() });
            }
            for (qubit, &value) in bits.iter().enumerate() {
                if value > 1 && !open.contains(&qubit) {
                    return Err(Error::InvalidBit { qubit, value });
                }
            }
            Ok(())
        };
        match output {
            OutputSpec::Amplitude(bits) => check_bits(bits, &[]),
            OutputSpec::Open { fixed, open } => {
                let mut seen = vec![false; n];
                for &q in open {
                    if q >= n {
                        return Err(Error::OpenQubitOutOfRange { qubit: q, num_qubits: n });
                    }
                    if seen[q] {
                        return Err(Error::DuplicateOpenQubit { qubit: q });
                    }
                    seen[q] = true;
                }
                check_bits(fixed, open)
            }
        }
    }

    /// Compile a circuit for an output shape: plan it (or fetch the plan
    /// from the cache) and bundle the plan with this engine's worker pool
    /// into a [`CompiledCircuit`].
    ///
    /// The concrete bits inside `output` only serve as the template the plan
    /// is built with; every execute method rebinds them.
    ///
    /// ```
    /// use qtnsim_core::Engine;
    /// use qtn_circuit::{Circuit, Gate, OutputSpec};
    ///
    /// let mut circuit = Circuit::new(2);
    /// circuit.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1);
    /// let engine = Engine::new();
    /// let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0, 0]))?;
    /// // Same circuit, same shape, different bits: served from the cache.
    /// let again = engine.compile(&circuit, &OutputSpec::Amplitude(vec![1, 1]))?;
    /// assert!(again.plan_cache_hit());
    /// assert_eq!(engine.plans_built(), 1);
    /// # Ok::<(), qtnsim_core::Error>(())
    /// ```
    pub fn compile(
        &self,
        circuit: &Circuit,
        output: &OutputSpec,
    ) -> Result<CompiledCircuit, Error> {
        Self::validate(circuit, output)?;
        let key = PlanKey {
            fingerprint: circuit.fingerprint(),
            planner: self.planner_fingerprint(),
            shape: OutputShape::of(output),
        };

        // Poisoned shards recover (`lock_unpoisoned`): the LRU map stays
        // consistent across an unwind, so a panic elsewhere must not wedge
        // every later compile of circuits hashing into this shard.
        let cached = crate::sync::lock_unpoisoned(self.state.shard(key.fingerprint)).get(&key);
        let (plan, cache_hit) = match cached {
            Some(plan) => {
                self.state.cache_hits.fetch_add(1, Ordering::Relaxed);
                (plan, true)
            }
            None => {
                self.state.cache_misses.fetch_add(1, Ordering::Relaxed);
                let plan = Arc::new(plan_simulation(circuit, output, &self.planner));
                self.state.plans_built.fetch_add(1, Ordering::Relaxed);
                let evicted = crate::sync::lock_unpoisoned(self.state.shard(key.fingerprint))
                    .insert(key.clone(), Arc::clone(&plan));
                self.state.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
                (plan, false)
            }
        };

        // The lifetime analysis finally gives the slicing's "memory budget"
        // a real number to be checked against: reject plans whose predicted
        // per-worker peak exceeds the configured byte budget. Rejected
        // plans stay cached (the budget is not part of the cache key), so
        // retrying with a raised budget is a cache hit, not a replan.
        if let Some(budget_bytes) = self.planner.memory_budget_bytes {
            let predicted_bytes = plan.predicted_peak_bytes();
            if predicted_bytes > budget_bytes {
                return Err(Error::MemoryBudgetExceeded { predicted_bytes, budget_bytes });
            }
        }

        Ok(CompiledCircuit {
            plan,
            pool: Arc::clone(&self.pool),
            executor: self.executor.clone(),
            shape: key.shape,
            num_qubits: circuit.num_qubits(),
            fingerprint: key.fingerprint,
            plan_cache_hit: cache_hit,
        })
    }

    /// Compile `circuit` for the open qubits (riding the plan cache) and
    /// draw `count` correlated samples with the remaining qubits projected
    /// onto `fixed` — the one-call sampling entry the [`crate::Simulator`]
    /// shim rides.
    ///
    /// All `2^|open|` amplitudes come from **one** batched execution of the
    /// compiled plan ([`CompiledCircuit::execute_batch`]): the stem sweep
    /// runs once for the whole distribution, never once per sampled
    /// bitstring. Sampling is deterministic in `seed`.
    pub fn sample_bitstrings(
        &self,
        circuit: &Circuit,
        fixed: &[u8],
        open: &[usize],
        count: usize,
        seed: u64,
    ) -> Result<(Vec<Vec<u8>>, ExecutionReport), Error> {
        let spec = OutputSpec::Open { fixed: fixed.to_vec(), open: open.to_vec() };
        let compiled = self.compile(circuit, &spec)?;
        compiled.sample(fixed, count, seed)
    }
}

/// A circuit compiled for one output shape: a [`SimulationPlan`] plus cheap
/// output rebinding and a handle to the engine's persistent worker pool.
///
/// All execute methods take `&self` and are safe to call concurrently; the
/// floating-point result of each method is bit-identical across repeated
/// calls (the executor reduces partials in a schedule-independent order).
#[derive(Clone)]
pub struct CompiledCircuit {
    plan: Arc<SimulationPlan>,
    pool: Arc<WorkerPool>,
    executor: ExecutorConfig,
    shape: OutputShape,
    num_qubits: usize,
    fingerprint: u64,
    plan_cache_hit: bool,
}

impl std::fmt::Debug for CompiledCircuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledCircuit")
            .field("shape", &self.shape)
            .field("num_qubits", &self.num_qubits)
            .field("subtasks", &self.plan.num_subtasks())
            .field("log_cost", &self.plan.log_cost)
            .field("plan_cache_hit", &self.plan_cache_hit)
            .finish()
    }
}

impl CompiledCircuit {
    /// The underlying simulation plan (complexity, slicing set, overhead).
    pub fn plan(&self) -> &SimulationPlan {
        &self.plan
    }

    /// The output shape this circuit was compiled for.
    pub fn shape(&self) -> &OutputShape {
        &self.shape
    }

    /// Number of qubits of the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The [`Circuit::fingerprint`] this circuit was compiled from — the key
    /// the engine's plan cache shards on, and the key a serving layer
    /// coalesces concurrent requests under: two compiled circuits with equal
    /// fingerprints and shapes share one plan, so their amplitude requests
    /// can ride one batched execution.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether compilation was served from the engine's plan cache.
    pub fn plan_cache_hit(&self) -> bool {
        self.plan_cache_hit
    }

    /// The rebindable parameter slots of the compiled circuit — one per
    /// rotation-gate angle, in circuit order, with canonical names like
    /// `g3:rz[1].theta` (see [`qtn_circuit::NetworkBuild::param_slots`]).
    /// Slot *indices* are what [`rebind_parameters`](Self::rebind_parameters)
    /// takes.
    pub fn param_slots(&self) -> &[ParamSlot] {
        self.plan.build.param_slots()
    }

    /// Rebind gate parameters **without replanning** — the third
    /// compile-once axis, next to output bits and slices: a parameter sweep
    /// compiles the circuit once and calls this between executions, instead
    /// of paying the full planning pipeline per angle.
    ///
    /// Each `(slot, value)` update regenerates the slot's gate-leaf tensor
    /// in place (shape-preserving, so the memoized stem compile and the
    /// buffer pools survive untouched) and the plan-lifetime branch cache
    /// is invalidated **cone-scoped**: only the cached entries whose
    /// subtree contains a rebound leaf are dropped and rebuilt by the next
    /// execution; every entry outside the cone is carried over verbatim.
    /// Results are bit-identical to compiling fresh at the new angles, and
    /// [`ExecutionStats::params_rebound`],
    /// [`ExecutionStats::branch_entries_invalidated`] and
    /// [`ExecutionStats::branch_flops_survived_rebind`] on the next execute
    /// quantify the cone.
    ///
    /// The call is atomic: on any error (unknown slot, non-finite angle)
    /// the compiled circuit — leaf tensors and caches alike — is left
    /// exactly as it was. An empty update set is a no-op that keeps every
    /// cache. [`fingerprint`](Self::fingerprint) keeps reporting the
    /// compile-time circuit's fingerprint; a rebound circuit is a private
    /// descendant of that plan, not a plan-cache citizen.
    ///
    /// ```
    /// use qtnsim_core::Engine;
    /// use qtn_circuit::{Circuit, Gate, OutputSpec};
    ///
    /// let mut circuit = Circuit::new(2);
    /// circuit.push1(Gate::H, 0).push1(Gate::Rz(0.3), 1).push2(Gate::Cnot, 0, 1);
    /// let engine = Engine::new();
    /// let mut compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0, 0]))?;
    /// assert_eq!(compiled.param_slots().len(), 1); // the Rz angle
    /// compiled.rebind_parameters(&[(0, 1.2)])?;
    /// let (amp, _) = compiled.execute_amplitude(&[0, 0])?;
    /// assert_eq!(engine.plans_built(), 1); // swept, never replanned
    /// # let mut fresh = Circuit::new(2);
    /// # fresh.push1(Gate::H, 0).push1(Gate::Rz(1.2), 1).push2(Gate::Cnot, 0, 1);
    /// # let direct = Engine::new().compile(&fresh, &OutputSpec::Amplitude(vec![0, 0]))?;
    /// # assert_eq!(amp, direct.execute_amplitude(&[0, 0])?.0);
    /// # Ok::<(), qtnsim_core::Error>(())
    /// ```
    pub fn rebind_parameters(&mut self, updates: &[(usize, f64)]) -> Result<(), Error> {
        if updates.is_empty() {
            return Ok(());
        }
        // Work on a private clone: the engine's plan cache (and every other
        // CompiledCircuit) keeps the original plan with the original
        // angles, and an error below discards the clone untouched.
        let mut plan = (*self.plan).clone();
        let touched = plan.build.rebind_parameters(updates)?;

        // The invalidation cone: a kept branch entry dies exactly when its
        // parameter dependency mask intersects the rebound leaf set.
        let masks = plan.classification.param_masks();
        let words = ordinal_words(masks.num_leaves(), &touched);
        let in_cone = |root: usize| masks.intersects(root, &words);

        // Stage the survivors on the clone: from the built cache when one
        // exists, else from the seed an earlier (not yet executed) rebind
        // staged — stacked rebinds accumulate their accounting.
        let mut seed = BranchSeed::default();
        match self.plan.branch_cache.get() {
            Some(Ok(cache)) => {
                for &root in plan.classification.branch_keep() {
                    if in_cone(root) {
                        seed.entries_invalidated += 1;
                        continue;
                    }
                    let tensor = cache.tensor(root).ok_or_else(|| {
                        Error::Internal(format!("branch root {root} missing from cache"))
                    })?;
                    let (flops, contractions) = cache.entry_cost(root).unwrap_or((0, 0));
                    seed.surviving.insert(root, (tensor.clone(), flops, contractions));
                }
                seed.params_rebound = updates.len() as u64;
            }
            _ => {
                if let Some(prior) = &self.plan.branch_seed {
                    seed.entries_invalidated = prior.entries_invalidated;
                    seed.params_rebound = prior.params_rebound;
                    for (&root, entry) in &prior.surviving {
                        if in_cone(root) {
                            seed.entries_invalidated += 1;
                        } else {
                            seed.surviving.insert(root, entry.clone());
                        }
                    }
                }
                seed.params_rebound += updates.len() as u64;
            }
        }
        plan.branch_cache = Arc::new(OnceLock::new());
        plan.branch_seed = Some(Arc::new(seed));
        self.plan = Arc::new(plan);
        Ok(())
    }

    fn validate_bits(&self, bits: &[u8]) -> Result<(), Error> {
        if bits.len() != self.num_qubits {
            return Err(Error::BitstringLength { expected: self.num_qubits, got: bits.len() });
        }
        // Entries at open positions are documented as ignored, so they are
        // exempt from bit-value validation.
        let open: &[usize] = match &self.shape {
            OutputShape::Amplitude => &[],
            OutputShape::Open(open) => open,
        };
        for (qubit, &value) in bits.iter().enumerate() {
            if value > 1 && !open.contains(&qubit) {
                return Err(Error::InvalidBit { qubit, value });
            }
        }
        Ok(())
    }

    fn execute_rebound(
        &self,
        bits: &[u8],
    ) -> Result<(DenseTensor<Complex64>, ExecutionReport), Error> {
        self.validate_bits(bits)?;
        let overrides: LeafOverrides = self.plan.build.rebind_output(bits)?.into_iter().collect();
        let branch_cache_hit = self.plan.branch_cache_built();
        let (result, stats) =
            execute_on_pool(&self.pool, &self.plan, &Arc::new(overrides), &self.executor)?;
        Ok((
            result,
            ExecutionReport { stats, plan_cache_hit: self.plan_cache_hit, branch_cache_hit },
        ))
    }

    /// Compute the amplitude ⟨bits|C|0…0⟩. Requires an
    /// [`OutputShape::Amplitude`] compilation; any bitstring executes on the
    /// same plan — only the output projectors are rebound, and branch
    /// tensors cached by earlier executions are reused.
    ///
    /// ```
    /// use qtnsim_core::Engine;
    /// use qtn_circuit::{Circuit, Gate, OutputSpec};
    ///
    /// let mut circuit = Circuit::new(2);
    /// circuit.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1);
    /// let compiled = Engine::new().compile(&circuit, &OutputSpec::Amplitude(vec![0, 0]))?;
    /// let (amp, report) = compiled.execute_amplitude(&[1, 1])?;
    /// assert!((amp.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-12); // Bell state
    /// assert_eq!(report.stats.subtasks_run, report.stats.subtasks_total);
    /// # Ok::<(), qtnsim_core::Error>(())
    /// ```
    pub fn execute_amplitude(&self, bits: &[u8]) -> Result<(Complex64, ExecutionReport), Error> {
        if self.shape != OutputShape::Amplitude {
            return Err(Error::OutputShapeMismatch {
                compiled: self.shape.name(),
                requested: "amplitude",
            });
        }
        let (result, report) = self.execute_rebound(bits)?;
        Ok((result.scalar_value(), report))
    }

    /// Compute the amplitudes ⟨bits|C|0…0⟩ of a whole batch of bitstrings
    /// in **one** execution, amortizing the slice sweep across the batch.
    /// Requires an [`OutputShape::Amplitude`] compilation.
    ///
    /// A loop of [`execute_amplitude`](Self::execute_amplitude) calls
    /// replays the entire slice-dependent stem once per bitstring. This
    /// method contracts each subtask's projector-independent `StemPure`
    /// prefix **once per slice assignment** and replays only the
    /// `StemMixed` suffix (plus one frontier build) per bitstring — the
    /// XEB-style many-amplitudes workload of the paper. The returned
    /// amplitudes are **bit-identical** to that loop, in the input order;
    /// [`ExecutionStats::stem_pure_flops_reused`] and
    /// [`ExecutionStats::amplitudes_in_batch`] in the report quantify the
    /// amortization.
    ///
    /// ```
    /// use qtnsim_core::Engine;
    /// use qtn_circuit::{Circuit, Gate, OutputSpec};
    ///
    /// let mut circuit = Circuit::new(2);
    /// circuit.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1);
    /// let compiled = Engine::new().compile(&circuit, &OutputSpec::Amplitude(vec![0, 0]))?;
    /// let batch: Vec<&[u8]> = vec![&[0, 0], &[0, 1], &[1, 1]];
    /// let (amps, report) = compiled.execute_amplitudes(&batch)?;
    /// assert_eq!(amps.len(), 3);
    /// assert!(amps[1].abs() < 1e-12); // |01⟩ has no Bell-state amplitude
    /// assert_eq!(report.stats.amplitudes_in_batch, 3);
    /// # Ok::<(), qtnsim_core::Error>(())
    /// ```
    pub fn execute_amplitudes(
        &self,
        bitstrings: &[&[u8]],
    ) -> Result<(Vec<Complex64>, ExecutionReport), Error> {
        if self.shape != OutputShape::Amplitude {
            return Err(Error::OutputShapeMismatch {
                compiled: self.shape.name(),
                requested: "amplitude",
            });
        }
        for bits in bitstrings {
            self.validate_bits(bits)?;
        }
        let branch_cache_hit = self.plan.branch_cache_built();
        let (results, stats) = crate::executor::execute_amplitudes_on_pool(
            &self.pool,
            &self.plan,
            bitstrings,
            &self.executor,
        )?;
        let amplitudes = results.iter().map(DenseTensor::scalar_value).collect();
        Ok((
            amplitudes,
            ExecutionReport { stats, plan_cache_hit: self.plan_cache_hit, branch_cache_hit },
        ))
    }

    /// Compute the tensor of amplitudes over the compiled open qubits with
    /// the remaining qubits projected onto `fixed` (entries at open qubits
    /// are ignored). Requires an [`OutputShape::Open`] compilation. The
    /// returned tensor's axes are ordered by ascending qubit id.
    ///
    /// ```
    /// use qtnsim_core::Engine;
    /// use qtn_circuit::{Circuit, Gate, OutputSpec};
    ///
    /// let mut circuit = Circuit::new(2);
    /// circuit.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1);
    /// let spec = OutputSpec::Open { fixed: vec![0, 0], open: vec![0, 1] };
    /// let compiled = Engine::new().compile(&circuit, &spec)?;
    /// let (batch, _) = compiled.execute_batch(&[0, 0])?;
    /// assert_eq!(batch.rank(), 2); // all four Bell-state amplitudes at once
    /// assert!((batch.get(&[0, 1]).abs()) < 1e-12);
    /// # Ok::<(), qtnsim_core::Error>(())
    /// ```
    pub fn execute_batch(
        &self,
        fixed: &[u8],
    ) -> Result<(DenseTensor<Complex64>, ExecutionReport), Error> {
        if !matches!(self.shape, OutputShape::Open(_)) {
            return Err(Error::OutputShapeMismatch {
                compiled: self.shape.name(),
                requested: "open-batch",
            });
        }
        let (result, report) = self.execute_rebound(fixed)?;
        // Order axes by qubit id.
        let mut pairs = self.plan.build.open_indices.clone();
        pairs.sort_by_key(|&(q, _)| q);
        let order: IndexSet = pairs.iter().map(|&(_, id)| id).collect();
        Ok((qtn_tensor::permute::permute_to_order(&result, &order), report))
    }

    /// Draw `count` correlated samples of the compiled open qubits from the
    /// exact output distribution, with the remaining qubits projected onto
    /// `fixed`. Requires an [`OutputShape::Open`] compilation. Sampling is
    /// deterministic in `seed`.
    ///
    /// ```
    /// use qtnsim_core::Engine;
    /// use qtn_circuit::{Circuit, Gate, OutputSpec};
    ///
    /// let mut circuit = Circuit::new(2);
    /// circuit.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1);
    /// let spec = OutputSpec::Open { fixed: vec![0, 0], open: vec![0, 1] };
    /// let compiled = Engine::new().compile(&circuit, &spec)?;
    /// let (samples, _) = compiled.sample(&[0, 0], 64, 7)?;
    /// assert_eq!(samples.len(), 64);
    /// assert!(samples.iter().all(|s| s[0] == s[1])); // Bell correlations
    /// # Ok::<(), qtnsim_core::Error>(())
    /// ```
    pub fn sample(
        &self,
        fixed: &[u8],
        count: usize,
        seed: u64,
    ) -> Result<(Vec<Vec<u8>>, ExecutionReport), Error> {
        let (amplitudes, report) = self.execute_batch(fixed)?;
        Ok((sample_bitstrings(&amplitudes, count, seed)?, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtn_circuit::{Gate, RqcConfig};
    use qtn_statevector::StateVector;

    #[test]
    fn compile_validates_at_the_boundary() {
        let circuit = Circuit::new(3);
        let engine = Engine::new();
        assert_eq!(
            engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; 2])).unwrap_err(),
            Error::BitstringLength { expected: 3, got: 2 }
        );
        assert_eq!(
            engine.compile(&circuit, &OutputSpec::Amplitude(vec![0, 2, 0])).unwrap_err(),
            Error::InvalidBit { qubit: 1, value: 2 }
        );
        assert_eq!(
            engine
                .compile(&circuit, &OutputSpec::Open { fixed: vec![0; 3], open: vec![5] })
                .unwrap_err(),
            Error::OpenQubitOutOfRange { qubit: 5, num_qubits: 3 }
        );
        assert_eq!(
            engine
                .compile(&circuit, &OutputSpec::Open { fixed: vec![0; 3], open: vec![1, 1] })
                .unwrap_err(),
            Error::DuplicateOpenQubit { qubit: 1 }
        );
        // Nothing was planned for rejected inputs.
        assert_eq!(engine.plans_built(), 0);
    }

    #[test]
    fn shape_misuse_is_a_typed_error() {
        let mut circuit = Circuit::new(2);
        circuit.push1(Gate::H, 0);
        let engine = Engine::new();
        let amp = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0, 0])).unwrap();
        assert!(matches!(
            amp.execute_batch(&[0, 0]).unwrap_err(),
            Error::OutputShapeMismatch { .. }
        ));
        assert!(matches!(
            amp.sample(&[0, 0], 5, 1).unwrap_err(),
            Error::OutputShapeMismatch { .. }
        ));
        let open = engine
            .compile(&circuit, &OutputSpec::Open { fixed: vec![0, 0], open: vec![0] })
            .unwrap();
        assert!(matches!(
            open.execute_amplitude(&[0, 0]).unwrap_err(),
            Error::OutputShapeMismatch { .. }
        ));
    }

    #[test]
    fn one_plan_serves_every_bitstring() {
        let circuit = RqcConfig::small(2, 3, 6, 3).build();
        let n = circuit.num_qubits();
        let engine =
            Engine::new().with_planner(PlannerConfig { target_rank: 8, ..Default::default() });
        let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
        let sv = StateVector::simulate(&circuit);
        for k in 0..8usize {
            let bits: Vec<u8> = (0..n).map(|q| ((k >> (q % 3)) & 1) as u8).collect();
            let (amp, _) = compiled.execute_amplitude(&bits).unwrap();
            assert!((amp - sv.amplitude(&bits)).abs() < 1e-8, "amplitude mismatch for {bits:?}");
        }
        assert_eq!(engine.plans_built(), 1, "planning must run exactly once");
    }

    #[test]
    fn plan_cache_hits_across_compiles() {
        let circuit = RqcConfig::small(2, 3, 6, 4).build();
        let n = circuit.num_qubits();
        let engine =
            Engine::new().with_planner(PlannerConfig { target_rank: 10, ..Default::default() });
        let a = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
        assert!(!a.plan_cache_hit());
        let mut other = vec![0u8; n];
        other[0] = 1;
        let b = engine.compile(&circuit, &OutputSpec::Amplitude(other)).unwrap();
        assert!(b.plan_cache_hit(), "same shape must hit the plan cache");
        assert_eq!(engine.plans_built(), 1);
        assert_eq!(engine.cache_hits(), 1);
        // A different shape (open batch) misses.
        let c = engine
            .compile(&circuit, &OutputSpec::Open { fixed: vec![0; n], open: vec![0, 1] })
            .unwrap();
        assert!(!c.plan_cache_hit());
        assert_eq!(engine.plans_built(), 2);
        // Open-qubit order does not matter for the shape key.
        let d = engine
            .compile(&circuit, &OutputSpec::Open { fixed: vec![0; n], open: vec![1, 0] })
            .unwrap();
        assert!(d.plan_cache_hit());
        assert_eq!(engine.plans_built(), 2);
    }

    #[test]
    fn cache_never_serves_plans_across_planner_configs() {
        let circuit = RqcConfig::small(3, 3, 8, 7).build();
        let n = circuit.num_qubits();
        let spec = OutputSpec::Amplitude(vec![0; n]);
        // `loose` plans without slicing; `tight` is a clone sharing the same
        // cache but configured with a hard memory budget.
        let loose =
            Engine::new().with_planner(PlannerConfig { target_rank: 40, ..Default::default() });
        let tight =
            loose.clone().with_planner(PlannerConfig { target_rank: 7, ..Default::default() });
        let a = loose.compile(&circuit, &spec).unwrap();
        let b = tight.compile(&circuit, &spec).unwrap();
        assert!(!b.plan_cache_hit(), "tight engine must not reuse the loose plan");
        assert!(a.plan().sliced_max_rank() > 7);
        assert!(b.plan().sliced_max_rank() <= 7, "cached plan violates the memory budget");
        assert_eq!(loose.plans_built(), 2, "counters are shared across clones");
        // Each config still hits its own entry.
        assert!(loose.compile(&circuit, &spec).unwrap().plan_cache_hit());
        assert!(tight.compile(&circuit, &spec).unwrap().plan_cache_hit());
    }

    #[test]
    fn with_executor_keeps_cache_and_counters() {
        let circuit = RqcConfig::small(2, 2, 4, 3).build();
        let n = circuit.num_qubits();
        let spec = OutputSpec::Amplitude(vec![0; n]);
        let engine = Engine::new();
        engine.compile(&circuit, &spec).unwrap();
        assert_eq!(engine.plans_built(), 1);
        let engine = engine.with_executor(ExecutorConfig {
            workers: 2,
            max_subtasks: 0,
            ..Default::default()
        });
        // Reconfiguring the pool must not drop cached plans or counters.
        assert_eq!(engine.plans_built(), 1);
        let again = engine.compile(&circuit, &spec).unwrap();
        assert!(again.plan_cache_hit());
        assert_eq!(engine.plans_built(), 1);
        // And the recompiled circuit executes on the new pool.
        assert!(again.execute_amplitude(&vec![0; n]).is_ok());
    }

    #[test]
    fn open_positions_are_exempt_from_fixed_bit_validation() {
        let mut circuit = Circuit::new(2);
        circuit.push1(Gate::H, 0);
        let engine = Engine::new();
        // Sentinel value 2 at the open position is documented as ignored.
        let compiled = engine
            .compile(&circuit, &OutputSpec::Open { fixed: vec![2, 0], open: vec![0] })
            .unwrap();
        let (batch, _) = compiled.execute_batch(&[2, 0]).unwrap();
        assert_eq!(batch.rank(), 1);
        // A bad bit at a *projected* position is still rejected.
        assert_eq!(
            compiled.execute_batch(&[0, 5]).unwrap_err(),
            Error::InvalidBit { qubit: 1, value: 5 }
        );
    }

    #[test]
    fn memory_budget_rejects_oversized_plans() {
        let circuit = RqcConfig::small(3, 3, 8, 6).build();
        let n = circuit.num_qubits();
        let spec = OutputSpec::Amplitude(vec![0; n]);
        let planner = PlannerConfig { target_rank: 8, ..Default::default() };
        // Learn the plan's predicted peak, then budget just below it.
        let unbudgeted = Engine::new().with_planner(planner.clone());
        let compiled = unbudgeted.compile(&circuit, &spec).unwrap();
        let predicted = compiled.plan().predicted_peak_bytes();
        assert!(predicted > 0);

        let tight = unbudgeted.clone().with_planner(PlannerConfig {
            memory_budget_bytes: Some(predicted - 1),
            ..planner.clone()
        });
        assert_eq!(
            tight.compile(&circuit, &spec).unwrap_err(),
            Error::MemoryBudgetExceeded { predicted_bytes: predicted, budget_bytes: predicted - 1 }
        );
        // A budget that the prediction fits in compiles — and executes.
        let roomy = tight
            .clone()
            .with_planner(PlannerConfig { memory_budget_bytes: Some(predicted), ..planner });
        let compiled = roomy.compile(&circuit, &spec).unwrap();
        let (_, report) = compiled.execute_amplitude(&vec![0; n]).unwrap();
        assert!(report.stats.peak_bytes_in_flight <= predicted);
        // The budget is not part of the plan-cache key: all three engines
        // (unbudgeted, rejected, accepted) shared one cached plan.
        assert!(compiled.plan_cache_hit());
        assert_eq!(unbudgeted.plans_built(), 1, "budget probing must never replan");
    }

    #[test]
    fn lru_evicts_oldest_plan() {
        let engine = Engine::new().with_cache_capacity(2);
        let mk = |seed: u64| RqcConfig::small(2, 2, 4, seed).build();
        let (c1, c2, c3) = (mk(1), mk(2), mk(3));
        let spec = |c: &Circuit| OutputSpec::Amplitude(vec![0; c.num_qubits()]);
        engine.compile(&c1, &spec(&c1)).unwrap();
        engine.compile(&c2, &spec(&c2)).unwrap();
        engine.compile(&c3, &spec(&c3)).unwrap(); // evicts c1
        assert_eq!(engine.plans_built(), 3);
        engine.compile(&c3, &spec(&c3)).unwrap(); // hit
        engine.compile(&c1, &spec(&c1)).unwrap(); // miss: was evicted
        assert_eq!(engine.plans_built(), 4);
        assert_eq!(engine.cache_hits(), 1);
    }

    #[test]
    fn cache_stats_count_hits_misses_and_evictions() {
        let engine = Engine::new().with_cache_capacity(2);
        let mk = |seed: u64| RqcConfig::small(2, 2, 4, seed).build();
        let (c1, c2, c3) = (mk(1), mk(2), mk(3));
        let spec = |c: &Circuit| OutputSpec::Amplitude(vec![0; c.num_qubits()]);
        engine.compile(&c1, &spec(&c1)).unwrap(); // miss
        engine.compile(&c1, &spec(&c1)).unwrap(); // hit
        engine.compile(&c2, &spec(&c2)).unwrap(); // miss
        engine.compile(&c3, &spec(&c3)).unwrap(); // miss, evicts c1
        assert_eq!(engine.cache_stats(), CacheStats { hits: 1, misses: 3, evictions: 1 });
        // The legacy accessor and the struct agree.
        assert_eq!(engine.cache_hits(), engine.cache_stats().hits);
        let json = engine.cache_stats().to_json();
        assert!(json.contains("\"plan_cache_evictions\": 1"), "{json}");
    }

    #[test]
    fn sharded_cache_serves_and_keeps_plans() {
        let mk = |seed: u64| RqcConfig::small(2, 2, 4, seed).build();
        let circuits: Vec<Circuit> = (1..=5).map(mk).collect();
        let spec = |c: &Circuit| OutputSpec::Amplitude(vec![0; c.num_qubits()]);
        // Populate unsharded, then reshard: cached plans must survive the
        // redistribution and keep serving hits.
        let engine = Engine::new();
        for c in &circuits {
            engine.compile(c, &spec(c)).unwrap();
        }
        let engine = engine.with_cache_shards(4);
        assert_eq!(engine.cache_shards(), 4);
        assert_eq!(engine.plans_built(), circuits.len(), "resharding must keep counters");
        for c in &circuits {
            assert!(engine.compile(c, &spec(c)).unwrap().plan_cache_hit());
        }
        assert_eq!(engine.cache_stats().hits, circuits.len());
        // Concurrent compiles of distinct circuits across shards stay exact.
        let engine = std::sync::Arc::new(engine);
        let handles: Vec<_> = circuits
            .iter()
            .map(|c| {
                let engine = std::sync::Arc::clone(&engine);
                let c = c.clone();
                std::thread::spawn(move || {
                    engine.compile(&c, &OutputSpec::Amplitude(vec![0; c.num_qubits()])).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(engine.plans_built(), circuits.len(), "all concurrent compiles were hits");
    }

    #[test]
    fn compiled_circuit_exposes_the_fingerprint() {
        let mk = |seed: u64| RqcConfig::small(2, 2, 4, seed).build();
        let (c1, c2) = (mk(1), mk(2));
        let engine = Engine::new();
        let spec = |c: &Circuit| OutputSpec::Amplitude(vec![0; c.num_qubits()]);
        let a = engine.compile(&c1, &spec(&c1)).unwrap();
        let b = engine.compile(&c2, &spec(&c2)).unwrap();
        assert_eq!(a.fingerprint(), c1.fingerprint());
        assert_eq!(b.fingerprint(), c2.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn execute_amplitudes_matches_singles_and_validates() {
        let circuit = RqcConfig::small(3, 3, 8, 13).build();
        let n = circuit.num_qubits();
        let engine =
            Engine::new().with_planner(PlannerConfig { target_rank: 7, ..Default::default() });
        let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
        let patterns: Vec<Vec<u8>> =
            (0..5usize).map(|k| (0..n).map(|q| ((k >> (q % 3)) & 1) as u8).collect()).collect();
        let batch: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
        let (amps, report) = compiled.execute_amplitudes(&batch).unwrap();
        assert_eq!(amps.len(), patterns.len());
        assert_eq!(report.stats.amplitudes_in_batch, patterns.len() as u64);
        let sv = StateVector::simulate(&circuit);
        for (bits, amp) in patterns.iter().zip(amps.iter()) {
            assert!((*amp - sv.amplitude(bits)).abs() < 1e-8, "mismatch for {bits:?}");
            let (single, _) = compiled.execute_amplitude(bits).unwrap();
            assert_eq!(single, *amp, "batched amplitude must be bit-identical");
        }
        // A bad bitstring anywhere in the batch rejects the whole call.
        let bad: Vec<&[u8]> = vec![&patterns[0], &[9; 1]];
        assert!(matches!(
            compiled.execute_amplitudes(&bad).unwrap_err(),
            Error::BitstringLength { .. }
        ));
        // Shape misuse is typed.
        let open = engine
            .compile(&circuit, &OutputSpec::Open { fixed: vec![0; n], open: vec![0] })
            .unwrap();
        assert!(matches!(
            open.execute_amplitudes(&batch).unwrap_err(),
            Error::OutputShapeMismatch { .. }
        ));
    }

    #[test]
    fn engine_sample_bitstrings_rides_the_plan_cache() {
        let mut circuit = Circuit::new(2);
        circuit.push1(Gate::H, 0);
        let engine = Engine::new();
        let (samples, report) = engine.sample_bitstrings(&circuit, &[0, 0], &[0], 500, 3).unwrap();
        assert_eq!(samples.len(), 500);
        assert!(!report.plan_cache_hit);
        let (again, report) = engine.sample_bitstrings(&circuit, &[0, 0], &[0], 500, 3).unwrap();
        assert_eq!(samples, again, "sampling is deterministic in the seed");
        assert!(report.plan_cache_hit, "repeated sampling must reuse the plan");
        assert_eq!(engine.plans_built(), 1);
    }

    #[test]
    fn batch_and_sample_through_the_engine() {
        let mut circuit = Circuit::new(2);
        circuit.push1(Gate::H, 0);
        let engine = Engine::new();
        let compiled = engine
            .compile(&circuit, &OutputSpec::Open { fixed: vec![0, 0], open: vec![0] })
            .unwrap();
        let (batch, _) = compiled.execute_batch(&[0, 0]).unwrap();
        assert_eq!(batch.rank(), 1);
        let h = 1.0 / 2f64.sqrt();
        assert!((batch.get(&[0]).abs() - h).abs() < 1e-10);
        let (samples, _) = compiled.sample(&[0, 0], 2000, 7).unwrap();
        assert_eq!(samples.len(), 2000);
        let ones = samples.iter().filter(|s| s[0] == 1).count();
        assert!(ones > 800 && ones < 1200, "biased sampling: {ones}/2000");
    }

    /// The same circuit with the k-th parameter slot set to `angles[k]` —
    /// the "fresh compile at the new angles" baseline parameter rebinding
    /// must match bit for bit.
    fn circuit_with_angles(circuit: &Circuit, slots: &[ParamSlot], angles: &[f64]) -> Circuit {
        let mut out = Circuit::new(circuit.num_qubits());
        for (op_index, op) in circuit.ops().iter().enumerate() {
            let mut gate = op.gate.clone();
            for (slot, value) in slots.iter().zip(angles) {
                if slot.op_index() == op_index {
                    gate = gate.with_param(slot.param_index(), *value).expect("slot maps a param");
                }
            }
            match op.qubits.as_slice() {
                [q] => {
                    out.push1(gate, *q);
                }
                [a, b] => {
                    out.push2(gate, *a, *b);
                }
                _ => unreachable!("gates are 1- or 2-qubit"),
            }
        }
        out
    }

    #[test]
    fn rebind_parameters_matches_a_fresh_compile_bit_for_bit() {
        let circuit = RqcConfig::small(2, 3, 6, 5).build();
        let n = circuit.num_qubits();
        let spec = OutputSpec::Amplitude(vec![0; n]);
        let engine =
            Engine::new().with_planner(PlannerConfig { target_rank: 8, ..Default::default() });
        let mut compiled = engine.compile(&circuit, &spec).unwrap();
        let slots: Vec<ParamSlot> = compiled.param_slots().to_vec();
        assert!(!slots.is_empty(), "RQC circuits carry FSim parameter slots");

        // Cold execution builds the branch cache; its branch bill is the
        // shape-only cold baseline every rebind's flop identity refers to.
        let bits = vec![0u8; n];
        let (_, cold) = compiled.execute_amplitude(&bits).unwrap();
        assert_eq!(cold.stats.params_rebound, 0);
        assert_eq!(cold.stats.branch_entries_invalidated, 0);
        assert_eq!(cold.stats.branch_flops_survived_rebind, 0);

        // Sweep one mid-circuit angle plus the last slot.
        let mut angles: Vec<f64> = slots.iter().map(ParamSlot::value).collect();
        let updates = vec![(slots.len() / 2, 1.25), (slots.len() - 1, -0.75)];
        for &(slot, value) in &updates {
            angles[slot] = value;
        }
        compiled.rebind_parameters(&updates).unwrap();
        let (amp, report) = compiled.execute_amplitude(&bits).unwrap();
        assert_eq!(engine.plans_built(), 1, "rebinding must never replan");

        // Counters: the rebind is visible exactly once, on the execution
        // that rebuilt the cone, and the flop identity is exact.
        assert_eq!(report.stats.params_rebound, updates.len() as u64);
        assert!(report.stats.branch_entries_invalidated > 0, "updates must hit branch entries");
        assert!(
            report.stats.branch_flops_survived_rebind > 0,
            "entries outside the cone must be carried over, not rebuilt"
        );
        assert_eq!(
            report.stats.branch_flops + report.stats.branch_flops_survived_rebind,
            cold.stats.branch_flops,
            "survived + rebuilt must equal the cold bill exactly"
        );
        let (_, again) = compiled.execute_amplitude(&bits).unwrap();
        assert_eq!(again.stats.params_rebound, 0, "counters report once, on the build");
        assert_eq!(again.stats.branch_flops, 0);

        // Bit-identical to a fresh compile at the new angles — pooled,
        // unpooled, and through the batched path.
        let fresh = circuit_with_angles(&circuit, &slots, &angles);
        let direct = Engine::new()
            .with_planner(PlannerConfig { target_rank: 8, ..Default::default() })
            .compile(&fresh, &spec)
            .unwrap();
        let (expected, _) = direct.execute_amplitude(&bits).unwrap();
        assert_eq!(amp, expected, "rebound amplitude must match a fresh compile bit for bit");

        let patterns: Vec<Vec<u8>> =
            (0..4usize).map(|k| (0..n).map(|q| ((k >> (q % 2)) & 1) as u8).collect()).collect();
        let batch: Vec<&[u8]> = patterns.iter().map(Vec::as_slice).collect();
        let (amps, _) = compiled.execute_amplitudes(&batch).unwrap();
        let (amps_direct, _) = direct.execute_amplitudes(&batch).unwrap();
        assert_eq!(amps, amps_direct, "batched execution must match after a rebind");

        let unpooled = ExecutorConfig { pool: false, ..Default::default() };
        let engine_np = Engine::new()
            .with_planner(PlannerConfig { target_rank: 8, ..Default::default() })
            .with_executor(unpooled.clone());
        let mut compiled_np = engine_np.compile(&circuit, &spec).unwrap();
        compiled_np.rebind_parameters(&updates).unwrap();
        let (amp_np, _) = compiled_np.execute_amplitude(&bits).unwrap();
        let direct_np = Engine::new()
            .with_planner(PlannerConfig { target_rank: 8, ..Default::default() })
            .with_executor(unpooled)
            .compile(&fresh, &spec)
            .unwrap();
        assert_eq!(amp_np, direct_np.execute_amplitude(&bits).unwrap().0);
    }

    #[test]
    fn failed_rebinds_leave_the_compiled_circuit_untouched() {
        let circuit = RqcConfig::small(2, 3, 6, 5).build();
        let n = circuit.num_qubits();
        let spec = OutputSpec::Amplitude(vec![0; n]);
        let engine =
            Engine::new().with_planner(PlannerConfig { target_rank: 8, ..Default::default() });
        let mut compiled = engine.compile(&circuit, &spec).unwrap();
        let slots = compiled.param_slots().len();
        let bits = vec![0u8; n];
        let (amp, _) = compiled.execute_amplitude(&bits).unwrap();

        // A bad update anywhere rejects the whole set — even when valid
        // updates precede it.
        assert_eq!(
            compiled.rebind_parameters(&[(0, 0.5), (slots, 1.0)]).unwrap_err(),
            Error::UnknownParamSlot { slot: slots, slots }
        );
        assert_eq!(
            compiled.rebind_parameters(&[(0, 0.5), (0, f64::NAN)]).unwrap_err(),
            Error::NonFiniteParam { slot: 0 }
        );
        assert_eq!(
            compiled.rebind_parameters(&[(0, f64::INFINITY)]).unwrap_err(),
            Error::NonFiniteParam { slot: 0 }
        );

        // Build and caches are exactly as if the calls never happened: same
        // amplitude, branch cache still warm, no rebind accounting.
        let (again, report) = compiled.execute_amplitude(&bits).unwrap();
        assert_eq!(again, amp, "a failed rebind must not perturb results");
        assert!(report.branch_cache_hit, "a failed rebind must not drop the cache");
        assert_eq!(report.stats.branch_flops, 0);
        assert_eq!(report.stats.params_rebound, 0);
        assert_eq!(report.stats.branch_entries_invalidated, 0);
    }

    #[test]
    fn random_angle_subsets_rebind_with_minimal_cones() {
        let circuit = RqcConfig::small(2, 3, 6, 9).build();
        let n = circuit.num_qubits();
        let spec = OutputSpec::Amplitude(vec![0; n]);
        let planner = PlannerConfig { target_rank: 8, ..Default::default() };
        let engine = Engine::new().with_planner(planner.clone());
        let mut compiled = engine.compile(&circuit, &spec).unwrap();
        let slots: Vec<ParamSlot> = compiled.param_slots().to_vec();
        assert!(slots.len() >= 2, "need several slots to sweep subsets");
        let bits = vec![0u8; n];
        let (_, cold) = compiled.execute_amplitude(&bits).unwrap();
        let cold_branch_flops = cold.stats.branch_flops;

        // Deterministic LCG; the test sweeps the empty set, the full set
        // and random subsets in between.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut angles: Vec<f64> = slots.iter().map(ParamSlot::value).collect();
        for round in 0..6 {
            let chosen: Vec<usize> = match round {
                0 => Vec::new(),
                1 => (0..slots.len()).collect(),
                _ => (0..slots.len()).filter(|_| next() % 2 == 0).collect(),
            };
            let updates: Vec<(usize, f64)> = chosen
                .iter()
                .map(|&s| (s, (next() % 6283) as f64 / 1000.0 - std::f64::consts::PI))
                .collect();
            for &(slot, value) in &updates {
                angles[slot] = value;
            }

            // The minimal cone, computed independently from the masks: the
            // kept roots whose subtree contains a rebound leaf.
            let (expected_cone, sliced_subtasks) = {
                let plan = compiled.plan();
                let masks = plan.classification.param_masks();
                let mut leaves: Vec<usize> = chosen.iter().map(|&s| slots[s].leaf()).collect();
                leaves.sort_unstable();
                leaves.dedup();
                let words = ordinal_words(masks.num_leaves(), &leaves);
                let cone = plan
                    .classification
                    .branch_keep()
                    .iter()
                    .filter(|&&root| masks.intersects(root, &words))
                    .count() as u64;
                (cone, !plan.slicing.sliced.is_empty())
            };

            compiled.rebind_parameters(&updates).unwrap();
            let (amp, report) = compiled.execute_amplitude(&bits).unwrap();

            // Cone minimality, flop identity, and the memory invariant. An
            // empty update set is a no-op: the warm cache survives outright
            // and no build (hence no rebind accounting) happens at all.
            assert_eq!(report.stats.params_rebound, updates.len() as u64, "round {round}");
            assert_eq!(
                report.stats.branch_entries_invalidated, expected_cone,
                "round {round}: exactly the mask-intersecting entries must drop"
            );
            if updates.is_empty() {
                assert_eq!(report.stats.branch_flops, 0, "round {round}");
                assert_eq!(report.stats.branch_flops_survived_rebind, 0, "round {round}");
                assert!(report.branch_cache_hit, "round {round}: no-op must keep the cache");
            } else {
                assert_eq!(
                    report.stats.branch_flops + report.stats.branch_flops_survived_rebind,
                    cold_branch_flops,
                    "round {round}: survived + rebuilt must equal the cold bill"
                );
            }
            assert!(
                report.stats.peak_bytes_in_flight <= report.stats.predicted_peak_bytes,
                "round {round}"
            );
            if sliced_subtasks {
                assert_eq!(
                    report.stats.peak_bytes_in_flight, report.stats.predicted_peak_bytes,
                    "round {round}: pooled peak must stay exactly at the prediction"
                );
            }

            // Bit-identity against a fresh compile at the current angles.
            let fresh = circuit_with_angles(&circuit, &slots, &angles);
            let direct =
                Engine::new().with_planner(planner.clone()).compile(&fresh, &spec).unwrap();
            assert_eq!(amp, direct.execute_amplitude(&bits).unwrap().0, "round {round}");
        }
        assert_eq!(engine.plans_built(), 1, "six rebind rounds, zero replans");
    }

    #[test]
    fn zero_distribution_surfaces_as_typed_error() {
        // X|0> = |1>, so projecting the open qubit's complement onto |0>
        // still leaves mass; instead fix qubit 0 of a CNOT pair to the
        // impossible branch: qubit 1 of |00>+|11> with qubit 0 fixed to 1
        // has mass only on |1>, so sample over qubit 1 with qubit 0 fixed
        // works. To force an all-zero tensor, use a circuit with a
        // deterministic output and fix the projector to the orthogonal bit.
        let mut circuit = Circuit::new(2);
        circuit.push1(Gate::X, 0); // state is |1>⊗|0>
        let engine = Engine::new();
        let compiled = engine
            .compile(&circuit, &OutputSpec::Open { fixed: vec![0, 0], open: vec![1] })
            .unwrap();
        // Fixing qubit 0 to 0 projects onto an impossible branch: the batch
        // over qubit 1 is all zeros.
        assert_eq!(compiled.sample(&[0, 0], 10, 1).unwrap_err(), Error::ZeroAmplitudeDistribution);
    }
}
