//! Cross-validation against the state-vector reference.

use crate::executor::{execute_plan, ExecutorConfig};
use crate::planner::{plan_simulation, PlannerConfig};
use qtn_circuit::{Circuit, OutputSpec};
use qtn_statevector::StateVector;

/// Result of a verification run.
#[derive(Debug, Clone)]
pub struct Verification {
    /// Number of amplitudes compared.
    pub compared: usize,
    /// Largest absolute deviation found.
    pub max_error: f64,
    /// Whether every deviation was below the tolerance.
    pub passed: bool,
}

/// Compare the sliced tensor-network simulator against the state-vector
/// simulator on `num_amplitudes` bitstrings of the given circuit (which must
/// be small enough for the state-vector method).
///
/// Returns the verification summary; `tolerance` is the maximum allowed
/// absolute amplitude error.
pub fn verify_against_statevector(
    circuit: &Circuit,
    planner: &PlannerConfig,
    num_amplitudes: usize,
    tolerance: f64,
) -> Verification {
    let n = circuit.num_qubits();
    assert!(n <= StateVector::MAX_QUBITS, "circuit too large for state-vector verification");
    let sv = StateVector::simulate(circuit);

    let mut max_error: f64 = 0.0;
    let mut compared = 0;
    for k in 0..num_amplitudes {
        // Spread the probed bitstrings deterministically over the space.
        let pattern = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - n.min(63));
        let bits: Vec<u8> = (0..n).map(|q| ((pattern >> (n - 1 - q)) & 1) as u8).collect();
        let plan = plan_simulation(circuit, &OutputSpec::Amplitude(bits.clone()), planner);
        let (result, _) = execute_plan(&plan, &ExecutorConfig::default());
        let got = result.scalar_value();
        let expected = sv.amplitude(&bits);
        max_error = max_error.max((got - expected).abs());
        compared += 1;
    }
    Verification { compared, max_error, passed: max_error <= tolerance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtn_circuit::RqcConfig;

    #[test]
    fn random_circuit_verifies() {
        let circuit = RqcConfig::small(3, 3, 8, 77).build();
        let planner = PlannerConfig { target_rank: 8, ..Default::default() };
        let v = verify_against_statevector(&circuit, &planner, 6, 1e-8);
        assert!(v.passed, "max error {}", v.max_error);
        assert_eq!(v.compared, 6);
    }

    #[test]
    fn sycamore_style_gates_verify_without_slicing() {
        let circuit = RqcConfig::small(2, 4, 10, 78).build();
        let planner = PlannerConfig { target_rank: 30, ..Default::default() };
        let v = verify_against_statevector(&circuit, &planner, 4, 1e-8);
        assert!(v.passed, "max error {}", v.max_error);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_circuit_is_rejected() {
        let circuit = Circuit::new(30);
        verify_against_statevector(&circuit, &PlannerConfig::default(), 1, 1e-8);
    }
}
