//! Exact sampling from a batch-amplitude tensor.
//!
//! The paper's headline workload generates one million *correlated samples*:
//! bitstrings of the open qubits drawn from the exact output distribution of
//! the contracted network. Given the tensor of amplitudes over the open
//! qubits, sampling is a categorical draw proportional to `|amplitude|²`.

use crate::error::Error;
use qtn_tensor::{Complex64, DenseTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw `count` bitstrings over the axes of `amplitudes`, with probability
/// proportional to the squared modulus of each amplitude. Bit `i` of a
/// returned sample corresponds to axis `i` of the tensor.
///
/// Returns [`Error::ZeroAmplitudeDistribution`] when every amplitude is
/// exactly zero (an empty distribution cannot be sampled).
pub fn sample_bitstrings(
    amplitudes: &DenseTensor<Complex64>,
    count: usize,
    seed: u64,
) -> Result<Vec<Vec<u8>>, Error> {
    let rank = amplitudes.rank();
    let probs: Vec<f64> = amplitudes.data().iter().map(|a| a.norm_sqr()).collect();
    let total: f64 = probs.iter().sum();
    if total <= 0.0 || total.is_nan() {
        return Err(Error::ZeroAmplitudeDistribution);
    }

    // Cumulative distribution for binary search.
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for p in &probs {
        acc += p / total;
        cdf.push(acc);
    }
    // Guard against floating-point shortfall at the end.
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }

    let mut rng = StdRng::seed_from_u64(seed);
    Ok((0..count)
        .map(|_| {
            let r: f64 = rng.gen_range(0.0..1.0);
            let idx = cdf.partition_point(|&c| c < r).min(probs.len() - 1);
            (0..rank).map(|axis| ((idx >> (rank - 1 - axis)) & 1) as u8).collect()
        })
        .collect())
}

/// Estimate the linear cross-entropy benchmarking fidelity (XEB) of a set of
/// samples against the exact output probabilities: `⟨2^n · p(x)⟩ − 1`, which
/// is ≈ 1 for samples drawn from the true distribution of a random circuit
/// and ≈ 0 for uniform noise.
pub fn linear_xeb(amplitudes: &DenseTensor<Complex64>, samples: &[Vec<u8>]) -> f64 {
    let n = amplitudes.rank();
    let norm: f64 = amplitudes.data().iter().map(|a| a.norm_sqr()).sum();
    let dim = (1usize << n) as f64;
    let mean_p: f64 =
        samples.iter().map(|bits| amplitudes.get(bits).norm_sqr() / norm).sum::<f64>()
            / samples.len() as f64;
    dim * mean_p - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtn_tensor::{c64, IndexSet};

    fn amplitude_tensor(values: Vec<Complex64>) -> DenseTensor<Complex64> {
        let rank = (values.len() as f64).log2() as usize;
        DenseTensor::from_data(IndexSet::new((0..rank as u32).collect()), values)
    }

    #[test]
    fn deterministic_distribution_always_returns_the_same_bitstring() {
        let t = amplitude_tensor(vec![
            Complex64::ZERO,
            Complex64::ZERO,
            c64(0.0, 1.0),
            Complex64::ZERO,
        ]);
        let samples = sample_bitstrings(&t, 50, 3).unwrap();
        for s in samples {
            assert_eq!(s, vec![1, 0]);
        }
    }

    #[test]
    fn uniform_distribution_is_roughly_uniform() {
        let h = 0.5;
        let t = amplitude_tensor(vec![c64(h, 0.0); 4]);
        let samples = sample_bitstrings(&t, 4000, 4).unwrap();
        let mut counts = [0usize; 4];
        for s in &samples {
            counts[(s[0] as usize) * 2 + s[1] as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "counts {counts:?}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let t = amplitude_tensor(vec![c64(0.6, 0.0), c64(0.8, 0.0)]);
        assert_eq!(sample_bitstrings(&t, 20, 9).unwrap(), sample_bitstrings(&t, 20, 9).unwrap());
        assert_ne!(sample_bitstrings(&t, 20, 9).unwrap(), sample_bitstrings(&t, 20, 10).unwrap());
    }

    #[test]
    fn xeb_of_true_samples_is_positive_for_peaked_distributions() {
        let t = amplitude_tensor(vec![c64(0.95, 0.0), c64(0.1, 0.0), c64(0.2, 0.0), c64(0.1, 0.0)]);
        let samples = sample_bitstrings(&t, 3000, 11).unwrap();
        let xeb = linear_xeb(&t, &samples);
        assert!(xeb > 0.5, "XEB {xeb} too low for correlated samples");
        // Uniform samples give ~0.
        let uniform: Vec<Vec<u8>> =
            (0..3000u32).map(|i| vec![(i % 2) as u8, ((i / 2) % 2) as u8]).collect();
        let xeb_uniform = linear_xeb(&t, &uniform);
        assert!(xeb_uniform.abs() < 0.2, "uniform XEB {xeb_uniform}");
    }

    #[test]
    fn zero_tensor_is_a_typed_error() {
        let t = amplitude_tensor(vec![Complex64::ZERO; 2]);
        assert_eq!(sample_bitstrings(&t, 1, 0).unwrap_err(), Error::ZeroAmplitudeDistribution);
    }
}
