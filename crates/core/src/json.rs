//! Dependency-free JSON emission.
//!
//! The container this project builds in is offline, so there is no serde;
//! every machine-readable artifact — the `BENCH_*.json` files the benches
//! write and the stats payloads `qtnsim-serve` reports — goes through this
//! one tiny emitter instead of ad-hoc `format!` strings. It only *writes*
//! JSON (the consumers are plotting scripts and dashboards, not this
//! crate), which keeps it ~a hundred lines.
//!
//! ```
//! use qtnsim_core::json::JsonObject;
//!
//! let mut obj = JsonObject::new();
//! obj.field_str("schema", "qtnsim-bench/example").field_u64("version", 1);
//! assert_eq!(obj.finish(), r#"{"schema": "qtnsim-bench/example", "version": 1}"#);
//! ```

/// Incremental builder for one JSON object. Field methods borrow mutably and
/// chain; [`finish`](Self::finish) closes the object and returns the string.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::from("{"), empty: true }
    }

    fn key(&mut self, key: &str) -> &mut Self {
        if !self.empty {
            self.buf.push_str(", ");
        }
        self.empty = false;
        self.buf.push('"');
        escape_into(key, &mut self.buf);
        self.buf.push_str("\": ");
        self
    }

    /// Append an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Append a `usize` field.
    pub fn field_usize(&mut self, key: &str, value: usize) -> &mut Self {
        self.field_u64(key, value as u64)
    }

    /// Append a float field. Finite values print with round-trip precision;
    /// non-finite values (which JSON cannot represent) become `null`.
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value:?}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Append a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Append a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(value, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Append a field whose value is already-serialized JSON (a nested
    /// object or array produced by this module).
    pub fn field_raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the JSON string.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Join already-serialized JSON values into an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(", "))
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_into(s: &str, buf: &mut String) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => buf.push_str(&format!("\\u{:04x}", c as u32)),
            c => buf.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_objects_and_arrays() {
        let mut inner = JsonObject::new();
        inner.field_u64("b", 2);
        let mut obj = JsonObject::new();
        obj.field_str("a", "x")
            .field_raw("inner", &inner.finish())
            .field_raw("list", &array(["1".to_string(), "2".to_string()]));
        assert_eq!(obj.finish(), r#"{"a": "x", "inner": {"b": 2}, "list": [1, 2]}"#);
    }

    #[test]
    fn floats_round_trip_and_nonfinite_is_null() {
        let mut obj = JsonObject::new();
        obj.field_f64("x", 0.1).field_f64("y", f64::NAN).field_f64("z", 3.0);
        let json = obj.finish();
        assert_eq!(json, r#"{"x": 0.1, "y": null, "z": 3.0}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let mut obj = JsonObject::new();
        obj.field_str("k", "a\"b\\c\nd\u{1}");
        assert_eq!(obj.finish(), "{\"k\": \"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array(Vec::new()), "[]");
    }
}
