//! # qtnsim — lifetime-based tensor-network quantum circuit simulation
//!
//! A Rust reproduction of *"Lifetime-Based Optimization for Simulating
//! Quantum Circuits on a New Sunway Supercomputer"* (PPoPP 2023): a
//! tensor-network contraction simulator for random quantum circuits whose
//! memory is managed by *slicing*, with the slicing sets chosen by the
//! paper's lifetime-based finder and simulated-annealing refiner, a
//! fused/secondary-slicing thread-level execution design, and an analytic
//! model of the Sunway SW26010pro memory hierarchy for performance
//! projection.
//!
//! ## Quick start: compile once, execute many
//!
//! Planning (contraction-path search plus slicing refinement) is orders of
//! magnitude more expensive than rebinding an output bitstring, so the API
//! splits the two: [`Engine::compile`] plans, [`CompiledCircuit`] executes.
//!
//! ```
//! use qtnsim::circuit::{Circuit, Gate, OutputSpec};
//! use qtnsim::Engine;
//!
//! // A 3-qubit GHZ circuit.
//! let mut circuit = Circuit::new(3);
//! circuit.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1).push2(Gate::Cnot, 1, 2);
//!
//! let engine = Engine::new();
//! let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; 3]))?;
//!
//! // Any bitstring executes on the same plan — only the rank-1 output
//! // projectors are rebound, the planner never runs again.
//! let (a000, _report) = compiled.execute_amplitude(&[0, 0, 0])?;
//! let (a111, report) = compiled.execute_amplitude(&[1, 1, 1])?;
//! assert!((a000.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-10);
//! assert!((a111.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-10);
//! assert!(report.stats.subtasks_run >= 1);
//! assert_eq!(engine.plans_built(), 1);
//! # Ok::<(), qtnsim::Error>(())
//! ```
//!
//! Correlated samples use an open-output compilation:
//!
//! ```
//! use qtnsim::circuit::{Circuit, Gate, OutputSpec};
//! use qtnsim::Engine;
//!
//! let mut circuit = Circuit::new(2);
//! circuit.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1);
//! let engine = Engine::new();
//! let compiled = engine.compile(
//!     &circuit,
//!     &OutputSpec::Open { fixed: vec![0, 0], open: vec![0, 1] },
//! )?;
//! let (samples, _) = compiled.sample(&[0, 0], 100, 7)?;
//! assert!(samples.iter().all(|s| s[0] == s[1])); // Bell pair correlations
//! # Ok::<(), qtnsim::Error>(())
//! ```
//!
//! Every fallible operation returns [`Error`] instead of panicking; the
//! legacy [`Simulator`] facade (panic-on-error, `&mut self`) remains as a
//! thin shim over [`Engine`].
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`tensor`] | complex scalars, dense tensors, permutation, GEMM, TTGT contraction |
//! | [`circuit`] | gate library, circuit IR, Sycamore-style RQC generator, circuit → network |
//! | [`tensornet`] | network graph, contraction trees, path search, stem extraction |
//! | [`slicing`] | lifetime, overheads, the slice finder (Alg. 1), the SA refiner (Alg. 2), baselines |
//! | [`sunway`] | SW26010pro machine model: memory hierarchy, roofline, scaling projection |
//! | [`fused`] | secondary slicing and the fused vs step-by-step thread-level executors |
//! | [`statevector`] | reference full-state simulator for validation |
//! | [`core`] | engine, planner, stem-only sliced executor, sampling, verification, projection |

#![warn(missing_docs)]

pub use qtn_circuit as circuit;
pub use qtn_fused as fused;
pub use qtn_slicing as slicing;
pub use qtn_statevector as statevector;
pub use qtn_sunway as sunway;
pub use qtn_tensor as tensor;
pub use qtn_tensornet as tensornet;
pub use qtnsim_core as core;

pub use qtn_circuit::{sycamore_rqc, Circuit, Gate, OutputSpec, RqcConfig};
pub use qtn_tensor::{c64, Complex64, DenseTensor};
pub use qtnsim_core::{
    execute_plan, plan_simulation, try_execute_plan, BufferPool, CompiledCircuit, Engine, Error,
    ExecutionReport, ExecutionStats, ExecutorConfig, OutputShape, PlannerConfig, PoolCounters,
    Simulator, WorkerPool,
};
