//! Generate correlated samples from a random circuit — the paper's headline
//! workload (1 M correlated samples of the Sycamore circuit) scaled down to
//! a grid that fits on a laptop, with an XEB (linear cross-entropy) check
//! that the samples follow the circuit's output distribution.
//!
//! Run with `cargo run --release --example correlated_samples`.

use qtnsim::core::sampling::linear_xeb;
use qtnsim::core::{Engine, ExecutorConfig, PlannerConfig};
use qtnsim::{OutputSpec, RqcConfig};

fn main() -> Result<(), qtnsim::Error> {
    // A 12-qubit, 10-cycle random circuit: big enough to need slicing with a
    // tight memory target, small enough to verify exactly.
    let config = RqcConfig::small(3, 4, 10, 7);
    let circuit = config.build();
    let n = circuit.num_qubits();

    let engine = Engine::with_configs(
        PlannerConfig { target_rank: 9, ..Default::default() },
        ExecutorConfig::default(),
    );

    // Open six qubits: the batch tensor holds 2^6 correlated amplitudes.
    let open: Vec<usize> = (0..6).collect();
    let fixed = vec![0u8; n];

    // Compile once; the sampling sweep below reuses the plan.
    let compiled =
        engine.compile(&circuit, &OutputSpec::Open { fixed: fixed.clone(), open: open.clone() })?;

    println!("Computing the batch of 2^{} correlated amplitudes...", open.len());
    let (batch, report) = compiled.execute_batch(&fixed)?;
    println!(
        "  {} slice subtasks, {:.1} Mflop, {:.3} s wall on {} workers",
        report.stats.subtasks_run,
        report.stats.flops as f64 / 1e6,
        report.stats.wall_seconds,
        report.stats.workers
    );
    let norm: f64 = batch.norm_sqr();
    println!("  total probability mass of the batch: {norm:.6}");

    println!("Drawing 100,000 correlated samples...");
    let samples = qtnsim::core::sample_bitstrings(&batch, 100_000, 1234)?;
    let xeb = linear_xeb(&batch, &samples);
    println!("  linear XEB of the samples against the exact distribution: {xeb:.4}");
    println!("  (≈ 1 + small porter-thomas fluctuations for faithful correlated samples)");

    // Show the five most likely outcomes.
    let mut ranked: Vec<(usize, f64)> =
        batch.data().iter().enumerate().map(|(i, a)| (i, a.norm_sqr() / norm)).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nMost likely outcomes of qubits {open:?}:");
    for (idx, p) in ranked.into_iter().take(5) {
        let bits: String = (0..open.len())
            .map(|a| char::from(b'0' + ((idx >> (open.len() - 1 - a)) & 1) as u8))
            .collect();
        println!("  |{bits}>  p = {p:.4}");
    }
    Ok(())
}
