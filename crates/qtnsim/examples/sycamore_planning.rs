//! Plan a full 53-qubit Sycamore random circuit the way the paper's
//! process-level pipeline does: build the tensor network, search contraction
//! paths, extract the stem, and compare the lifetime-based slice finder +
//! simulated-annealing refiner against the cotengra-style greedy baseline.
//!
//! Planning is pure graph work — no tensor of rank 30+ is ever materialised —
//! so this runs on a laptop even though executing the resulting contraction
//! would need a supercomputer.
//!
//! Run with `cargo run --release --example sycamore_planning [cycles]`.

use qtnsim::circuit::{circuit_to_network, sycamore_rqc, OutputSpec};
use qtnsim::slicing::overhead::{sliced_max_rank, slicing_overhead};
use qtnsim::slicing::{greedy_slicer, lifetime_slice_finder, refine_slicing, RefinerConfig};
use qtnsim::tensornet::{
    extract_stem, random_greedy_paths, simplify_network, ContractionTree, TensorNetwork,
};

fn main() {
    let cycles: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let target_rank = 30; // fits the united 96 GB main memory of one node

    println!("Building Sycamore-style RQC with m = {cycles} cycles (53 qubits)...");
    let circuit = sycamore_rqc(cycles, 2023);
    println!(
        "  {} gates total, {} two-qubit couplers",
        circuit.len(),
        circuit.two_qubit_gate_count()
    );

    let build = circuit_to_network(&circuit, &OutputSpec::Amplitude(vec![0; 53]));
    let network = TensorNetwork::from_build(&build);
    println!("  tensor network: {} tensors, {} edges", network.num_active(), network.num_edges());

    let mut work = network.clone();
    let mut pairs = simplify_network(&mut work);
    println!("  after rank-1/rank-2 simplification: {} tensors", work.num_active());

    println!("Searching contraction paths (randomised greedy)...");
    let candidates = random_greedy_paths(&work, 8, 7);
    let (_, best_pairs) = candidates.into_iter().next().unwrap();
    pairs.extend(best_pairs);
    let tree = ContractionTree::from_pairs(&network, &pairs);
    println!(
        "  best tree: log2(time complexity) = {:.2}, largest tensor rank = {}",
        tree.total_log_cost(),
        tree.max_rank()
    );

    let stem = extract_stem(&tree);
    println!(
        "  stem: {} absorption steps, log2(stem cost) = {:.2} ({:.1}% of the total)",
        stem.len(),
        stem.total_log_cost(),
        100.0 * (stem.total_log_cost() - tree.total_log_cost()).exp2()
    );

    println!("\nSlicing down to rank {target_rank} (per-node memory bound):");
    let ours = lifetime_slice_finder(&stem, target_rank);
    let refined = refine_slicing(&stem, &ours, &RefinerConfig::default());
    let baseline = greedy_slicer(&tree, target_rank);
    println!(
        "  lifetime finder          : {:>3} edges, overhead {:.3}, max rank {}",
        ours.len(),
        slicing_overhead(&stem, &ours.sliced),
        sliced_max_rank(&stem, &ours.sliced)
    );
    println!(
        "  + simulated annealing    : {:>3} edges, overhead {:.3}",
        refined.len(),
        slicing_overhead(&stem, &refined.sliced)
    );
    println!("  greedy baseline (cotengra-style, whole tree): {:>3} edges", baseline.len());
    println!(
        "\nSubtasks generated for the distributed sweep: 2^{} = {:.3e}",
        refined.len(),
        2f64.powi(refined.len() as i32)
    );
}
