//! Thread-level fused execution demo (§5 of the paper): run the same stem
//! segment with the step-by-step strategy and with secondary slicing, verify
//! the results agree bit-for-bit, and print the modelled time breakdown and
//! roofline placement on the SW26010pro machine model.
//!
//! Run with `cargo run --release --example fused_kernels`.

use qtnsim::fused::{execute_fused, execute_step_by_step, random_segment};
use qtnsim::sunway::{CostModel, Roofline, SunwayArch};

fn main() {
    let arch = SunwayArch::sw26010pro();
    let model = CostModel::new(arch.clone());
    let roofline = Roofline::for_cg(&arch);
    let ldm_rank = arch.max_ldm_rank();
    println!(
        "SW26010pro model: LDM holds rank-{ldm_rank} tensors, DMA {} GB/s, ridge point {:.1} flop/byte",
        arch.dma_bandwidth / 1e9,
        roofline.ridge_point()
    );

    println!(
        "\n{:<22} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "segment", "steps", "step-by-step", "fused", "AI (step)", "AI (fused)"
    );
    for (label, start_rank, steps) in [
        ("rank 14, 8 steps", 14usize, 8usize),
        ("rank 15, 10 steps", 15, 10),
        ("rank 16, 12 steps", 16, 12),
    ] {
        let segment = random_segment(99, start_rank, steps, 2, 2);
        let (a, step_report) = execute_step_by_step(&segment, &model);
        let (b, fused_report, plan) = execute_fused(&segment, &model, ldm_rank);
        // The two strategies must agree numerically.
        let diff: f64 = a
            .data()
            .iter()
            .zip(qtnsim::tensor::permute::permute_to_order(&b, a.indices()).data())
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-9, "fused and step-by-step disagree by {diff}");

        println!(
            "{:<22} {:>10} {:>11.4}s {:>11.4}s {:>10.2} {:>10.2}",
            label,
            format!("{} ({} groups)", steps, plan.groups.len()),
            step_report.time.total(),
            fused_report.time.total(),
            step_report.arithmetic_intensity,
            fused_report.arithmetic_intensity,
        );
        println!(
            "{:<22} memory access {:.4}s -> {:.4}s, permutation {:.4}s -> {:.4}s, GEMM {:.4}s -> {:.4}s",
            "",
            step_report.time.memory_access,
            fused_report.time.memory_access,
            step_report.time.permutation,
            fused_report.time.permutation,
            step_report.time.gemm,
            fused_report.time.gemm,
        );
        let bound = if roofline.is_compute_bound(fused_report.arithmetic_intensity) {
            "compute-bound"
        } else {
            "memory-bound"
        };
        println!(
            "{:<22} fused kernel is {bound} ({}x fewer stem DMA round trips)\n",
            "",
            step_report.stem_roundtrips / fused_report.stem_roundtrips.max(1)
        );
    }
}
