//! Using the simulator as a validation tool for quantum-algorithm research —
//! the use case the paper's introduction motivates ("scientists and
//! researchers in areas that heavily rely on reliable computing resources,
//! such as quantum algorithm, quantum programming language, and quantum
//! compiler, can work on classical simulators").
//!
//! Three standard algorithm building blocks are simulated through the full
//! lifetime-based TNC pipeline and checked against their analytic behaviour:
//! GHZ state preparation, the quantum Fourier transform, and a QAOA ansatz
//! on a ring graph. Each block compiles its circuit once and sweeps many
//! amplitudes/samples over the compiled plan.
//!
//! Run with `cargo run --release --example algorithm_validation`.

use qtnsim::circuit::{ghz, qaoa_ansatz, qft};
use qtnsim::core::{Engine, ExecutorConfig, PlannerConfig};
use qtnsim::OutputSpec;

fn main() -> Result<(), qtnsim::Error> {
    // --- GHZ --------------------------------------------------------------
    let n = 12;
    let engine = Engine::new();
    let compiled = engine.compile(&ghz(n), &OutputSpec::Amplitude(vec![0; n]))?;
    let (a_zeros, _) = compiled.execute_amplitude(&vec![0; n])?;
    let (a_ones, _) = compiled.execute_amplitude(&vec![1; n])?;
    let (a_mixed, _) = compiled.execute_amplitude(&{
        let mut b = vec![0; n];
        b[3] = 1;
        b
    })?;
    println!("GHZ({n}):");
    println!("  |0…0> amplitude = {a_zeros}   (expect 1/√2 ≈ 0.7071)");
    println!("  |1…1> amplitude = {a_ones}   (expect 1/√2 ≈ 0.7071)");
    println!("  mixed amplitude  = {a_mixed}   (expect 0)");
    println!("  (planner ran {} time(s) for all three)", engine.plans_built());

    // --- QFT ----------------------------------------------------------------
    let n = 10;
    let engine = Engine::with_configs(
        PlannerConfig { target_rank: 12, ..Default::default() },
        ExecutorConfig::default(),
    );
    let compiled = engine.compile(&qft(n), &OutputSpec::Amplitude(vec![0; n]))?;
    let uniform = 1.0 / (1u64 << n) as f64;
    let probe = [vec![0u8; n], vec![1u8; n]];
    println!("\nQFT({n}) applied to |0…0>:");
    let mut last_report = None;
    for bits in probe {
        let (a, report) = compiled.execute_amplitude(&bits)?;
        println!(
            "  |{}> probability = {:.6}   (expect uniform {:.6})",
            bits.iter().map(|b| char::from(b'0' + b)).collect::<String>(),
            a.norm_sqr(),
            uniform
        );
        last_report = Some(report);
    }
    let report = last_report.expect("probed at least one bitstring");
    println!(
        "  ({} slice subtasks, {:.1} Mflop)",
        report.stats.subtasks_run,
        report.stats.flops as f64 / 1e6
    );

    // --- QAOA on a ring -----------------------------------------------------
    let n = 10;
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let circuit = qaoa_ansatz(n, &edges, 2, 0.35, 0.6);
    let engine = Engine::with_configs(
        PlannerConfig { target_rank: 12, ..Default::default() },
        ExecutorConfig::default(),
    );
    // Expectation of the MaxCut cost over the exact output distribution,
    // estimated from correlated samples of all qubits.
    let compiled = engine
        .compile(&circuit, &OutputSpec::Open { fixed: vec![0; n], open: (0..n).collect() })?;
    let (samples, _) = compiled.sample(&vec![0; n], 20_000, 99)?;
    let mean_cut: f64 = samples
        .iter()
        .map(|bits| edges.iter().filter(|&&(a, b)| bits[a] != bits[b]).count() as f64)
        .sum::<f64>()
        / samples.len() as f64;
    println!("\nQAOA(p=2) on a {n}-cycle, 20k correlated samples:");
    println!("  mean cut value = {mean_cut:.3} of {} edges", edges.len());
    println!(
        "  (random bitstrings would give {:.1}; the ansatz should do better)",
        edges.len() as f64 / 2.0
    );
    Ok(())
}
