//! Quickstart: compile a circuit once, execute many amplitudes on the
//! compiled plan, inspect the plan, draw correlated samples, and verify
//! against the state-vector reference.
//!
//! Run with `cargo run --release --example quickstart`.

use qtnsim::circuit::{Circuit, Gate, OutputSpec, RqcConfig};
use qtnsim::core::{verify_against_statevector, Engine, ExecutorConfig, PlannerConfig};

fn main() -> Result<(), qtnsim::Error> {
    // --- 1. A hand-written circuit -----------------------------------------
    let mut ghz = Circuit::new(4);
    ghz.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1).push2(Gate::Cnot, 1, 2).push2(Gate::Cnot, 2, 3);
    let engine = Engine::new();
    let compiled = engine.compile(&ghz, &OutputSpec::Amplitude(vec![0; 4]))?;
    // Any bitstring executes on the same compiled plan — only the output
    // projectors are rebound.
    let (a0000, _) = compiled.execute_amplitude(&[0, 0, 0, 0])?;
    let (a1111, _) = compiled.execute_amplitude(&[1, 1, 1, 1])?;
    println!("GHZ amplitudes: <0000|psi> = {a0000}  <1111|psi> = {a1111}");
    println!("(planner ran {} time(s) for both amplitudes)", engine.plans_built());

    // --- 2. A Sycamore-style random circuit on a small grid ----------------
    let config = RqcConfig::small(3, 4, 10, 42);
    let circuit = config.build();
    let n = circuit.num_qubits();
    println!(
        "\nRandom circuit: {} qubits, {} cycles, {} two-qubit gates, depth {}",
        n,
        config.cycles,
        circuit.two_qubit_gate_count(),
        circuit.depth()
    );

    // Compile with a tight memory target to force slicing, and inspect the
    // plan before executing anything.
    let planner = PlannerConfig { target_rank: 10, ..Default::default() };
    let engine = Engine::with_configs(planner.clone(), ExecutorConfig::default());
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n]))?;
    let plan = compiled.plan();
    println!(
        "Plan: log2(cost) = {:.2}, sliced edges = {}, subtasks = {}, overhead = {:.3}, max rank after slicing = {}",
        plan.log_cost,
        plan.slicing.len(),
        plan.num_subtasks(),
        plan.overhead,
        plan.sliced_max_rank(),
    );

    // Execute: a single amplitude. The report replaces the old mutable
    // `last_stats` side-channel.
    let (amp, report) = compiled.execute_amplitude(&vec![0; n])?;
    println!(
        "Amplitude <0...0|C|0...0> = {amp}  ({} subtasks, {:.1} Mflop, {:.3} s wall)",
        report.stats.subtasks_run,
        report.stats.flops as f64 / 1e6,
        report.stats.wall_seconds
    );

    // A batch of correlated amplitudes over three open qubits, then samples.
    // A different output shape is a separate compilation (and cache entry).
    let open = vec![0usize, 1, 2];
    let sampler =
        engine.compile(&circuit, &OutputSpec::Open { fixed: vec![0; n], open: open.clone() })?;
    let (samples, _) = sampler.sample(&vec![0; n], 5, 1)?;
    println!("Five correlated samples of qubits {open:?}: {samples:?}");

    // --- 3. Verification against the state-vector reference ----------------
    let verification = verify_against_statevector(&circuit, &planner, 4, 1e-8);
    println!(
        "\nVerification against the state vector: {} amplitudes compared, max |error| = {:.2e}, passed = {}",
        verification.compared, verification.max_error, verification.passed
    );
    Ok(())
}
