//! Loopback integration tests for the `qtnsim-serve` amplitude service:
//! batched responses must be **bit-identical** to direct single-shot
//! engine execution, overload must produce explicit `Shed` backpressure
//! frames (never dropped connections or panics), and graceful shutdown
//! must drain every admitted request before the listener goes away.

use qtnsim::circuit::{OutputSpec, RqcConfig};
use qtnsim::{Circuit, Engine, ExecutorConfig, Gate, PlannerConfig};
use qtnsim_serve::{BatchConfig, Client, Reply, ServeConfig, Server, ShedReason};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A 12-qubit RQC whose plan slices at target rank 8 — big enough that
/// batching matters, small enough for a fast test.
fn sliced_circuit(seed: u64) -> Circuit {
    RqcConfig::small(3, 4, 10, seed).build()
}

fn planner() -> PlannerConfig {
    PlannerConfig { target_rank: 8, ..Default::default() }
}

fn executor() -> ExecutorConfig {
    ExecutorConfig { workers: 2, max_subtasks: 0, reuse: true, pool: true }
}

fn random_bitstrings(n: usize, count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| (0..n).map(|_| rng.gen_range(0..2u32) as u8).collect()).collect()
}

fn config(batch: BatchConfig) -> ServeConfig {
    ServeConfig { planner: planner(), executor: executor(), batch, ..ServeConfig::default() }
}

/// Batched service responses agree bit for bit with direct engine
/// execution of the same circuit — coalescing is invisible to clients.
#[test]
fn served_amplitudes_are_bit_identical_to_direct_execution() {
    let circuit = sliced_circuit(5);
    let n = circuit.num_qubits();
    let bitstrings = random_bitstrings(n, 12, 42);

    let server = Server::bind(
        "127.0.0.1:0",
        config(BatchConfig {
            max_batch: 4,
            batch_deadline: Duration::from_millis(5),
            max_queue: 4096,
        }),
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Pipeline every request up front so the batcher actually coalesces.
    let refs: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();
    let mut ids = Vec::new();
    for bits in &refs {
        ids.push(client.send_request(&circuit, &[bits]).expect("send"));
    }
    let mut replies = std::collections::HashMap::new();
    for _ in &ids {
        let reply = client.recv_reply().expect("reply");
        replies.insert(reply.request_id(), reply);
    }

    // Ground truth: the engine, driven directly, no service in between.
    let engine = Engine::with_configs(planner(), executor());
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    let mut coalesced = 0u32;
    for (id, bits) in ids.iter().zip(bitstrings.iter()) {
        let (expected, _) = compiled.execute_amplitude(bits).unwrap();
        match replies.remove(id) {
            Some(Reply::Amplitudes(resp)) => {
                assert_eq!(resp.amplitudes.len(), 1);
                assert_eq!(
                    resp.amplitudes[0], expected,
                    "served amplitude must be bit-identical for {bits:?}"
                );
                coalesced = coalesced.max(resp.batch_size);
            }
            other => panic!("expected amplitudes for request {id}, got {other:?}"),
        }
    }
    assert!(coalesced >= 2, "pipelined same-circuit requests should coalesce, got {coalesced}");

    let snapshot = server.shutdown();
    assert_eq!(snapshot.requests_completed, 12);
    assert_eq!(snapshot.requests_shed, 0);
    assert!(snapshot.batches_dispatched < 12, "batches must coalesce requests");
    assert_eq!(snapshot.cache.misses, 1, "one circuit, one plan");
}

/// A multi-amplitude request is answered in bitstring order, identical to
/// the engine's own batched execution.
#[test]
fn multi_amplitude_requests_preserve_order_and_identity() {
    let circuit = sliced_circuit(7);
    let n = circuit.num_qubits();
    let bitstrings = random_bitstrings(n, 8, 13);

    let server = Server::bind("127.0.0.1:0", config(BatchConfig::default())).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let refs: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();
    let reply = client.request_amplitudes(&circuit, &refs).expect("reply");
    let Reply::Amplitudes(resp) = reply else { panic!("expected amplitudes, got {reply:?}") };
    assert_eq!(resp.amplitudes.len(), 8);

    let engine = Engine::with_configs(planner(), executor());
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    for (bits, served) in bitstrings.iter().zip(resp.amplitudes.iter()) {
        let (expected, _) = compiled.execute_amplitude(bits).unwrap();
        assert_eq!(expected, *served, "order-preserving bit-identity for {bits:?}");
    }
    server.shutdown();
}

/// Overflowing the bounded queue produces explicit `Shed` frames with
/// `QueueFull`; the connection survives and later requests succeed.
#[test]
fn overload_sheds_with_explicit_backpressure() {
    let circuit = sliced_circuit(9);
    let n = circuit.num_qubits();

    // A queue bound of 2 amplitudes and a long deadline: the first request
    // dispatches solo and occupies the engine, the oversized second one
    // must be refused outright (3 amplitudes never fit a bound of 2).
    let server = Server::bind(
        "127.0.0.1:0",
        config(BatchConfig { max_batch: 64, batch_deadline: Duration::from_secs(5), max_queue: 2 }),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let zeros = vec![0u8; n];
    let ones = vec![1u8; n];
    let first = client.send_request(&circuit, &[&zeros]).expect("send");
    let shed_id = client.send_request(&circuit, &[&zeros, &ones, &zeros]).expect("send");

    // The shed reply arrives first: admission control answers immediately
    // while the first request's batch is still executing.
    let reply = client.recv_reply().expect("reply");
    assert_eq!(reply.request_id(), shed_id);
    match reply {
        Reply::Shed { reason, .. } => assert_eq!(reason, ShedReason::QueueFull),
        other => panic!("expected an explicit shed, got {other:?}"),
    }

    let snapshot = server.shutdown();
    assert_eq!(snapshot.requests_shed, 1);
    assert_eq!(snapshot.requests_completed, 1, "the admitted request completes, not drops");

    // The admitted request's response was delivered before the listener
    // went away.
    let reply = client.recv_reply().expect("drained reply");
    assert_eq!(reply.request_id(), first);
    assert!(matches!(reply, Reply::Amplitudes(_)), "drained request completes: {reply:?}");
}

/// Shutdown drains in-flight batches: every admitted request gets its
/// amplitudes even when the drain begins while they are still queued.
#[test]
fn shutdown_drains_admitted_requests() {
    let circuit = sliced_circuit(11);
    let n = circuit.num_qubits();
    let server = Server::bind(
        "127.0.0.1:0",
        config(BatchConfig {
            max_batch: 64,
            batch_deadline: Duration::from_secs(30),
            max_queue: 4096,
        }),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let bitstrings = random_bitstrings(n, 6, 3);
    let refs: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();
    let mut ids = Vec::new();
    for bits in &refs {
        ids.push(client.send_request(&circuit, &[bits]).expect("send"));
    }

    // Wait until the server has admitted all six (any batch opened while
    // the engine is busy parks behind the 30 s deadline), then drain.
    let admitted = std::time::Instant::now();
    while server.metrics().requests_accepted < 6 {
        assert!(admitted.elapsed() < Duration::from_secs(10), "requests never admitted");
        std::thread::sleep(Duration::from_millis(1));
    }
    let snapshot = server.shutdown();
    assert_eq!(snapshot.requests_completed, 6);
    // Solo dispatch may have run some of the work ahead of the drain (the
    // first request opens alone), but every dispatched batch has exactly
    // one recorded flush cause and nothing waits out the 30 s deadline.
    let flushes = snapshot.drain_flushes
        + snapshot.deadline_flushes
        + snapshot.size_flushes
        + snapshot.solo_flushes;
    assert_eq!(flushes, snapshot.batches_dispatched);
    assert_eq!(snapshot.deadline_flushes, 0, "nothing sat out the 30 s deadline");

    let mut seen = std::collections::HashSet::new();
    for _ in &ids {
        let reply = client.recv_reply().expect("drained reply");
        assert!(matches!(reply, Reply::Amplitudes(_)), "drained replies carry amplitudes");
        seen.insert(reply.request_id());
    }
    assert_eq!(seen.len(), ids.len(), "every admitted request answered exactly once");
}

/// The stats endpoint reports service counters and engine stats as JSON.
#[test]
fn stats_endpoint_reports_service_and_engine_counters() {
    let circuit = sliced_circuit(17);
    let n = circuit.num_qubits();
    let server = Server::bind("127.0.0.1:0", config(BatchConfig::default())).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let zeros = vec![0u8; n];
    let reply = client.request_amplitudes(&circuit, &[&zeros]).expect("reply");
    assert!(matches!(reply, Reply::Amplitudes(_)));

    let json = client.stats().expect("stats");
    for key in [
        "\"schema\": \"qtnsim-serve/stats\"",
        "\"version\": 3",
        "\"requests_completed\": 1",
        "\"batches_dispatched\": 1",
        "\"solo_flushes\": 1",
        "\"plan_cache\"",
        "\"plan_cache_misses\": 1",
        "\"execution\"",
        "\"subtasks_run\"",
    ] {
        assert!(json.contains(key), "stats JSON missing {key}: {json}");
    }
    server.shutdown();
}

/// Solo dispatch: under single-stream load (one request in flight at a
/// time) every batch is the only admitted work, so it dispatches
/// immediately with a `Solo` flush instead of waiting out the coalescing
/// deadline — observed queue wait stays far below `batch_deadline`.
#[test]
fn single_stream_load_skips_the_batch_deadline() {
    let circuit = sliced_circuit(19);
    let n = circuit.num_qubits();
    let deadline = Duration::from_millis(400);
    let server = Server::bind(
        "127.0.0.1:0",
        config(BatchConfig { max_batch: 64, batch_deadline: deadline, max_queue: 4096 }),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let bitstrings = random_bitstrings(n, 4, 77);
    let start = std::time::Instant::now();
    for bits in &bitstrings {
        let reply = client.request_amplitudes(&circuit, &[bits]).expect("reply");
        assert!(matches!(reply, Reply::Amplitudes(_)), "single-stream reply: {reply:?}");
    }
    let elapsed = start.elapsed();

    let snapshot = server.shutdown();
    assert_eq!(snapshot.requests_completed, 4);
    assert_eq!(snapshot.batches_dispatched, 4, "no coalescing partners exist");
    assert_eq!(snapshot.solo_flushes, 4, "every single-stream batch dispatches solo");
    assert_eq!(snapshot.deadline_flushes, 0, "no batch waited out the deadline");
    // The headline claim: observed queue wait is far below the deadline a
    // deadline-flushed batch would have paid in full, per request.
    let mean_wait = Duration::from_micros(snapshot.queue_micros / snapshot.batches_dispatched);
    assert!(
        mean_wait < deadline / 8,
        "solo dispatch must cut queue wait: mean {mean_wait:?} vs deadline {deadline:?}"
    );
    assert!(
        elapsed < deadline * 4,
        "serial requests must not serialize on coalescing deadlines: {elapsed:?}"
    );
}

/// Malformed client traffic gets a typed `Error` frame, not a panic or a
/// wedged server; a well-formed request on a fresh connection still works.
#[test]
fn invalid_requests_get_typed_errors_and_the_server_survives() {
    let server = Server::bind("127.0.0.1:0", config(BatchConfig::default())).expect("bind");

    // Bitstring length disagrees with the circuit's qubit count.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut circuit = Circuit::new(2);
    circuit.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1);
    let reply = client.request_amplitudes(&circuit, &[&[0, 0, 1]]).expect("reply");
    assert!(matches!(reply, Reply::Error { .. }), "length mismatch is a typed error: {reply:?}");

    // A non-bit value in a bitstring.
    let reply = client.request_amplitudes(&circuit, &[&[0, 2]]).expect("reply");
    assert!(matches!(reply, Reply::Error { .. }), "non-bit values are typed errors: {reply:?}");

    // The same connection still serves a valid request afterwards.
    let reply = client.request_amplitudes(&circuit, &[&[0, 0]]).expect("reply");
    let Reply::Amplitudes(resp) = reply else { panic!("server must survive bad requests") };
    assert!((resp.amplitudes[0].abs() - 1.0 / 2f64.sqrt()).abs() < 1e-12);

    server.shutdown();
}
