//! Chaos suite: the serving layer under deterministic injected faults.
//!
//! Every test arms a seeded [`qtnsim::core::fault::FaultPlan`] (or
//! explicitly clears the global slot) and then asserts the fault-tolerance
//! contract end to end over a loopback connection:
//!
//! - an injected worker panic fails **only** the affected batch with a
//!   typed error — the dispatcher, the connection, and every later request
//!   keep working, bit-identically;
//! - per-request deadlines (protocol v2) shed expired work at admission
//!   and at dispatch with explicit `Shed(DeadlineExceeded)` frames;
//! - [`RetryingClient`] reconnects through injected transport faults and
//!   still returns bit-identical amplitudes;
//! - graceful drain completes under active faults, answering every
//!   admitted request exactly once.
//!
//! The suite lives in its own test binary because fault plans are
//! process-global: a static mutex serializes the tests, and a drop guard
//! clears the plan even when an assertion panics, so no schedule leaks
//! into the next test (or into an env-installed `QTNSIM_FAULTS` plan).

use qtnsim::circuit::{OutputSpec, RqcConfig};
use qtnsim::core::fault::{self, FaultPlan, FaultPoint};
use qtnsim::{Circuit, Engine, ExecutorConfig, PlannerConfig};
use qtnsim_serve::{
    BatchConfig, Client, Reply, RetryConfig, RetryingClient, ServeConfig, Server, ShedReason,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes the suite (fault plans are process-global) and clears the
/// installed plan on drop, panicking tests included.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGuard {
    fn drop(&mut self) {
        fault::install(None);
    }
}

/// Take the suite lock and install `spec`; pass `""` to run fault-free
/// (still clearing any env-installed plan so tests are order-independent).
fn arm(spec: &str) -> FaultGuard {
    static SUITE: Mutex<()> = Mutex::new(());
    let guard = SUITE.lock().unwrap_or_else(|e| e.into_inner());
    if spec.is_empty() {
        fault::install(None);
    } else {
        fault::install(Some(FaultPlan::parse(spec).expect("valid fault spec")));
    }
    FaultGuard(guard)
}

fn sliced_circuit(seed: u64) -> Circuit {
    RqcConfig::small(3, 4, 10, seed).build()
}

fn planner() -> PlannerConfig {
    PlannerConfig { target_rank: 8, ..Default::default() }
}

fn executor() -> ExecutorConfig {
    ExecutorConfig { workers: 2, max_subtasks: 0, reuse: true, pool: true }
}

fn config(batch: BatchConfig) -> ServeConfig {
    ServeConfig { planner: planner(), executor: executor(), batch, ..ServeConfig::default() }
}

fn random_bitstrings(n: usize, count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| (0..n).map(|_| rng.gen_range(0..2u32) as u8).collect()).collect()
}

/// Ground truth from a direct engine run (computed before faults arm).
fn direct_amplitude(circuit: &Circuit, bits: &[u8]) -> qtnsim::Complex64 {
    let engine = Engine::with_configs(planner(), executor());
    let compiled =
        engine.compile(circuit, &OutputSpec::Amplitude(vec![0; circuit.num_qubits()])).unwrap();
    compiled.execute_amplitude(bits).unwrap().0
}

/// Three injected worker panics fail exactly their own requests with typed
/// errors; the service keeps serving between and after them, and the
/// post-panic amplitudes stay bit-identical to direct execution.
#[test]
fn worker_panics_fail_only_their_batch_and_the_service_keeps_serving() {
    let circuit = sliced_circuit(5);
    let zeros = vec![0u8; circuit.num_qubits()];
    let expected = direct_amplitude(&circuit, &zeros);

    let _guard = arm("");
    let server = Server::bind("127.0.0.1:0", config(BatchConfig::default())).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Alternate faulted and clean requests: `nth=1` without `every` fires
    // exactly once per installed plan, so each faulted round injects one
    // panic no matter how many contraction steps race past the point.
    for round in 0..3 {
        fault::install(Some(FaultPlan::parse("worker_panic:nth=1").unwrap()));
        let reply = client.request_amplitudes(&circuit, &[&zeros]).expect("typed reply");
        let Reply::Error { message, .. } = reply else {
            panic!("round {round}: injected panic must fail the request, got {reply:?}")
        };
        assert!(message.contains("panicked"), "round {round}: untyped panic message {message:?}");

        fault::install(None);
        let reply = client.request_amplitudes(&circuit, &[&zeros]).expect("typed reply");
        let Reply::Amplitudes(resp) = reply else {
            panic!("round {round}: service must keep serving after a panic, got {reply:?}")
        };
        assert_eq!(resp.amplitudes[0], expected, "round {round}: bit-identity after a panic");
    }

    let snap = server.shutdown();
    assert_eq!(snap.panics_caught, 3, "each injected panic is caught and counted");
    assert_eq!(snap.requests_failed, 3);
    assert_eq!(snap.requests_completed, 3);
    assert_eq!(snap.requests_shed, 0);
}

/// An injected buffer-pool allocation failure surfaces through the same
/// caught-panic path: a typed error for the affected request, clean
/// service afterwards.
#[test]
fn pool_allocation_failure_is_contained_like_a_worker_panic() {
    let circuit = sliced_circuit(7);
    let zeros = vec![0u8; circuit.num_qubits()];
    let expected = direct_amplitude(&circuit, &zeros);

    let _guard = arm("pool_alloc:nth=1");
    let server = Server::bind("127.0.0.1:0", config(BatchConfig::default())).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let reply = client.request_amplitudes(&circuit, &[&zeros]).expect("typed reply");
    let Reply::Error { message, .. } = reply else {
        panic!("allocation failure must fail the request, got {reply:?}")
    };
    assert!(message.contains("allocation"), "message should name the cause: {message:?}");

    fault::install(None);
    let reply = client.request_amplitudes(&circuit, &[&zeros]).expect("typed reply");
    let Reply::Amplitudes(resp) = reply else { panic!("service must survive, got {reply:?}") };
    assert_eq!(resp.amplitudes[0], expected);

    let snap = server.shutdown();
    assert_eq!(snap.panics_caught, 1);
    assert_eq!(snap.requests_failed, 1);
    assert_eq!(snap.requests_completed, 1);
}

/// A request whose deadline is already spent when it reaches admission is
/// shed there — explicit `Shed(DeadlineExceeded)`, never queued, never
/// executed.
#[test]
fn spent_deadlines_are_shed_at_admission() {
    let _guard = arm("");
    let circuit = sliced_circuit(9);
    let zeros = vec![0u8; circuit.num_qubits()];
    let server = Server::bind("127.0.0.1:0", config(BatchConfig::default())).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Warm the plan cache so the deadline-free request below is a plain
    // success and the shed cannot be blamed on compile time.
    let reply = client.request_amplitudes(&circuit, &[&zeros]).expect("warm");
    assert!(matches!(reply, Reply::Amplitudes(_)));

    let reply =
        client.request_amplitudes_with_deadline(&circuit, &[&zeros], Some(0)).expect("typed reply");
    match reply {
        Reply::Shed { reason, .. } => assert_eq!(reason, ShedReason::DeadlineExceeded),
        other => panic!("a 0 ms deadline must shed, got {other:?}"),
    }

    let snap = server.shutdown();
    assert_eq!(snap.deadline_sheds, 1);
    assert_eq!(snap.requests_shed, 1);
    assert_eq!(snap.requests_accepted, 1, "the shed request never entered the queue");
    assert_eq!(snap.requests_completed, 1);
}

/// A request admitted in time but stuck behind a long-running batch is
/// shed at dispatch once its deadline passes — the engine never spends
/// contraction work on an answer the client has given up on.
#[test]
fn queued_requests_past_their_deadline_are_shed_at_dispatch() {
    let _guard = arm("");
    let slow = sliced_circuit(5);
    let fast = sliced_circuit(23);
    let n = slow.num_qubits();
    let zeros = vec![0u8; n];
    let server = Server::bind(
        "127.0.0.1:0",
        config(BatchConfig {
            max_batch: 4096,
            batch_deadline: Duration::from_secs(2),
            max_queue: 8192,
        }),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Warm both plans so admission below is a cache hit.
    for circuit in [&slow, &fast] {
        let reply = client.request_amplitudes(circuit, &[&zeros]).expect("warm");
        assert!(matches!(reply, Reply::Amplitudes(_)), "warm-up must succeed");
    }

    // Occupy the engine with a large batch, and wait until the dispatcher
    // has actually claimed it (the two warm-ups were batches 1 and 2).
    let bitstrings = random_bitstrings(n, 1024, 3);
    let refs: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();
    let slow_id = client.send_request(&slow, &refs).expect("send slow");
    let claimed = std::time::Instant::now();
    while server.metrics().batches_dispatched < 3 {
        assert!(claimed.elapsed() < Duration::from_secs(10), "slow batch never dispatched");
        std::thread::sleep(Duration::from_micros(200));
    }

    // Admitted now, but parked behind the executing batch: by the time the
    // engine frees up, its 1 ms budget is long gone.
    let fast_id = client.send_request_with_deadline(&fast, &[&zeros], Some(1)).expect("send fast");

    let mut outcomes = std::collections::HashMap::new();
    for _ in 0..2 {
        let reply = client.recv_reply().expect("reply");
        outcomes.insert(reply.request_id(), reply);
    }
    match outcomes.remove(&slow_id) {
        Some(Reply::Amplitudes(resp)) => assert_eq!(resp.amplitudes.len(), 1024),
        other => panic!("the occupying batch completes normally, got {other:?}"),
    }
    match outcomes.remove(&fast_id) {
        Some(Reply::Shed { reason, .. }) => assert_eq!(reason, ShedReason::DeadlineExceeded),
        other => panic!("the expired request is shed at dispatch, got {other:?}"),
    }

    let snap = server.shutdown();
    assert_eq!(snap.deadline_sheds, 1);
    assert_eq!(snap.requests_accepted, 4, "the expired request was admitted, then shed");
    assert_eq!(snap.requests_completed, 3);
    // Even an all-expired batch keeps the flush-cause accounting intact.
    let flushes =
        snap.drain_flushes + snap.deadline_flushes + snap.size_flushes + snap.solo_flushes;
    assert_eq!(flushes, snap.batches_dispatched);
}

/// The retrying client rides out an injected read failure (which kills the
/// first connection) and an injected write failure (which tears down the
/// second mid-response), reconnecting each time, and still returns
/// bit-identical amplitudes on a bounded number of attempts.
#[test]
fn retrying_client_reconnects_through_transport_faults() {
    let circuit = sliced_circuit(11);
    let zeros = vec![0u8; circuit.num_qubits()];
    let expected = direct_amplitude(&circuit, &zeros);

    // read_io hit 1 is the first connection's first poll; write_io hit 2
    // is the second connection's response write (hit 1 is the first
    // connection's dying error frame).
    let _guard = arm("seed=3 read_io:nth=1 write_io:nth=2");
    let server = Server::bind("127.0.0.1:0", config(BatchConfig::default())).expect("bind");
    let mut client = RetryingClient::connect(
        server.local_addr(),
        RetryConfig {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
            ..RetryConfig::default()
        },
    )
    .expect("connect");

    let reply = client.request_amplitudes(&circuit, &[&zeros]).expect("retries must succeed");
    let Reply::Amplitudes(resp) = reply else { panic!("expected amplitudes, got {reply:?}") };
    assert_eq!(resp.amplitudes[0], expected, "bit-identity survives the retries");
    let stats = client.retry_stats();
    assert_eq!(stats.reconnects, 2, "both injected transport faults forced a reconnect");
    assert_eq!(stats.retries, 2);

    // The server kept serving throughout and its stats JSON proves which
    // faults actually fired.
    let snap = server.shutdown();
    // The write-faulted attempt completed server-side (only its response
    // write tore), so the resend counts a second completion — the price of
    // at-least-once retry over an idempotent request.
    assert_eq!(snap.requests_completed, 2);
    let fires: std::collections::HashMap<&str, u64> =
        snap.faults.iter().map(|&(name, _, fires)| (name, fires)).collect();
    assert_eq!(fires.get("read_io"), Some(&1));
    assert_eq!(fires.get("write_io"), Some(&1));
}

/// Deterministic sheds are not worth retrying: the retrying client returns
/// a `DeadlineExceeded` shed immediately instead of burning attempts on a
/// budget the server already declared spent.
#[test]
fn retrying_client_does_not_retry_deterministic_sheds() {
    let _guard = arm("");
    let circuit = sliced_circuit(13);
    let zeros = vec![0u8; circuit.num_qubits()];
    let server = Server::bind("127.0.0.1:0", config(BatchConfig::default())).expect("bind");
    let mut client =
        RetryingClient::connect(server.local_addr(), RetryConfig::default()).expect("connect");

    let reply =
        client.request_amplitudes_with_deadline(&circuit, &[&zeros], Some(0)).expect("typed reply");
    assert!(
        matches!(reply, Reply::Shed { reason: ShedReason::DeadlineExceeded, .. }),
        "got {reply:?}"
    );
    assert_eq!(client.retry_stats(), Default::default(), "no retry, no reconnect");
    server.shutdown();
}

/// Graceful drain completes while faults are still firing: every admitted
/// request is answered exactly once (amplitudes or a typed error — never
/// silence), and the books balance.
#[test]
fn drain_answers_every_admitted_request_under_active_faults() {
    // A panic early in the first batch plus a latency fault on every other
    // response write — drain must push through both.
    let _guard = arm("seed=17 worker_panic:nth=3 slow_write:every=2");
    let circuit = sliced_circuit(15);
    let n = circuit.num_qubits();
    let server = Server::bind(
        "127.0.0.1:0",
        config(BatchConfig {
            max_batch: 64,
            batch_deadline: Duration::from_secs(30),
            max_queue: 4096,
        }),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let bitstrings = random_bitstrings(n, 6, 29);
    let mut ids = std::collections::HashSet::new();
    for bits in &bitstrings {
        ids.insert(client.send_request(&circuit, &[bits.as_slice()]).expect("send"));
    }
    let admitted = std::time::Instant::now();
    while server.metrics().requests_accepted < 6 {
        assert!(admitted.elapsed() < Duration::from_secs(10), "requests never admitted");
        std::thread::sleep(Duration::from_millis(1));
    }

    let snap = server.shutdown();
    assert_eq!(snap.requests_accepted, 6);
    assert_eq!(
        snap.requests_completed + snap.requests_failed,
        6,
        "every admitted request resolved to exactly one outcome: {snap:?}"
    );
    let slow_writes =
        snap.faults.iter().find(|(name, _, _)| *name == "slow_write").map(|&(_, _, f)| f);
    assert!(slow_writes.is_some_and(|f| f >= 1), "the latency fault actually fired: {snap:?}");

    // The drain delivered each reply before the listener went away.
    for _ in 0..6 {
        let reply = client.recv_reply().expect("drained reply");
        assert!(
            matches!(reply, Reply::Amplitudes(_) | Reply::Error { .. }),
            "drained outcomes are typed: {reply:?}"
        );
        assert!(ids.remove(&reply.request_id()), "exactly one reply per request");
    }
    assert!(ids.is_empty());
}

/// `QTNSIM_FAULTS` installs a plan on first use without any code changes —
/// the knob the CI chaos job turns. Verified in a subprocess because the
/// env var is read exactly once per process.
#[test]
fn env_spec_installs_a_plan_on_first_use() {
    if std::env::var("QTNSIM_CHAOS_ENV_CHILD").is_ok() {
        // Child half: the env plan must be live before any install() call.
        let plan = fault::installed().expect("QTNSIM_FAULTS plan installed");
        assert_eq!(plan.seed(), 3);
        assert!(fault::fire(FaultPoint::PartialFrame), "nth=1 fires on the first hit");
        assert!(!fault::fire(FaultPoint::PartialFrame), "and only on the first");
        assert!(!fault::fire(FaultPoint::WorkerPanic), "unruled points stay silent");
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let output = std::process::Command::new(exe)
        .args(["--exact", "env_spec_installs_a_plan_on_first_use", "--test-threads=1"])
        .env("QTNSIM_CHAOS_ENV_CHILD", "1")
        .env("QTNSIM_FAULTS", "seed=3 partial_frame:nth=1")
        .output()
        .expect("spawn child test process");
    assert!(
        output.status.success(),
        "child failed:\n{}\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}
