//! Integration tests for the stem-only slice sweep: the two-level
//! partial-contraction reuse layer must be an *invisible* optimisation —
//! bit-identical results, strictly less work — and its phase counters must
//! track the documented lifetimes (branch cache once per compiled plan,
//! frontier once per execution, stem per subtask).

use qtnsim::circuit::{OutputSpec, RqcConfig};
use qtnsim::{Circuit, Engine, ExecutorConfig, PlannerConfig};

/// A 12-qubit RQC whose plan slices 4 edges at target rank 8 (16 subtasks).
fn sliced_circuit() -> Circuit {
    RqcConfig::small(3, 4, 10, 5).build()
}

fn planner() -> PlannerConfig {
    PlannerConfig { target_rank: 8, ..Default::default() }
}

fn executor(reuse: bool) -> ExecutorConfig {
    ExecutorConfig { workers: 4, max_subtasks: 0, reuse, ..Default::default() }
}

fn bitstrings(n: usize, count: usize) -> Vec<Vec<u8>> {
    (0..count).map(|k| (0..n).map(|q| ((k >> (q % 5)) & 1) as u8).collect()).collect()
}

#[test]
fn stem_only_sweep_is_bit_identical_to_full_replay() {
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Amplitude(vec![0; n]);

    let reuse_engine = Engine::with_configs(planner(), executor(true));
    let replay_engine = Engine::with_configs(planner(), executor(false));
    let reuse = reuse_engine.compile(&circuit, &spec).unwrap();
    let replay = replay_engine.compile(&circuit, &spec).unwrap();

    // The paper-faithful regime: a genuinely sliced plan.
    assert!(reuse.plan().slicing.len() >= 3, "plan must slice at least 3 edges");
    assert_eq!(reuse.plan().slicing.len(), 4, "this configuration slices |S| = 4 edges");
    assert_eq!(reuse.plan().num_subtasks(), 16);
    assert_eq!(reuse.plan().pairs, replay.plan().pairs, "planning is deterministic");

    for bits in bitstrings(n, 16) {
        let (a, ra) = reuse.execute_amplitude(&bits).unwrap();
        let (b, rb) = replay.execute_amplitude(&bits).unwrap();
        assert_eq!(a, b, "stem-only sweep must be bit-identical for {bits:?}");
        assert!(
            ra.stats.flops < rb.stats.flops,
            "reuse must do strictly less work ({} vs {} flops)",
            ra.stats.flops,
            rb.stats.flops
        );
        // Per-subtask work drops: only the stem is replayed.
        assert!(ra.stats.stem_flops / 16 < rb.stats.flops / 16);
        assert!(ra.stats.branch_flops_reused > 0);
        assert_eq!(rb.stats.branch_flops_reused, 0, "full replay reuses nothing");
    }
}

#[test]
fn branch_cache_builds_once_per_compile_and_frontier_once_per_execute() {
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Amplitude(vec![0; n]);
    let engine = Engine::with_configs(planner(), executor(true));
    let compiled = engine.compile(&circuit, &spec).unwrap();
    let (branch, frontier, stem_pure, stem_mixed) =
        compiled.plan().classification.contraction_counts();
    let stem = stem_pure + stem_mixed;
    assert!(branch > 0 && frontier > 0 && stem > 0, "all three phases must be populated");

    let mut reports = Vec::new();
    for bits in bitstrings(n, 16) {
        let (_, report) = compiled.execute_amplitude(&bits).unwrap();
        reports.push(report);
    }

    // Branch contractions happen exactly once per compiled plan…
    assert!(!reports[0].branch_cache_hit);
    assert_eq!(reports[0].stats.branch_contractions, branch as u64);
    assert!(reports[0].stats.branch_flops > 0);
    for report in &reports[1..] {
        assert!(report.branch_cache_hit);
        assert_eq!(report.stats.branch_contractions, 0);
        assert_eq!(report.stats.branch_flops, 0);
    }
    let total_branch: u64 = reports.iter().map(|r| r.stats.branch_contractions).sum();
    assert_eq!(total_branch, branch as u64, "branch cache must be built exactly once");

    // …and the frontier is rebuilt exactly once per execution.
    for report in &reports {
        assert_eq!(report.stats.frontier_contractions, frontier as u64);
        assert_eq!(
            report.stats.flops,
            report.stats.stem_flops + report.stats.frontier_flops + report.stats.branch_flops,
            "per-phase flop split must add up"
        );
    }

    // A recompile of the same shape shares the plan — and with it the cache.
    let recompiled = engine.compile(&circuit, &spec).unwrap();
    assert!(recompiled.plan_cache_hit());
    let (_, report) = recompiled.execute_amplitude(&vec![1; n]).unwrap();
    assert!(report.branch_cache_hit, "cached plan must carry its branch cache");
    assert_eq!(report.stats.branch_contractions, 0);
}

#[test]
fn open_batch_and_sampling_reuse_is_bit_identical() {
    let circuit = RqcConfig::small(3, 3, 8, 3).build();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Open { fixed: vec![0; n], open: vec![0, 1, 2] };
    let reuse_engine = Engine::with_configs(
        PlannerConfig { target_rank: 7, ..Default::default() },
        executor(true),
    );
    let replay_engine = Engine::with_configs(
        PlannerConfig { target_rank: 7, ..Default::default() },
        executor(false),
    );
    let reuse = reuse_engine.compile(&circuit, &spec).unwrap();
    let replay = replay_engine.compile(&circuit, &spec).unwrap();
    assert!(!reuse.plan().slicing.is_empty());

    for k in 0..4u8 {
        let fixed: Vec<u8> = (0..n).map(|q| ((k as usize >> (q % 2)) & 1) as u8).collect();
        let (a, ra) = reuse.execute_batch(&fixed).unwrap();
        let (b, _) = replay.execute_batch(&fixed).unwrap();
        assert_eq!(a.indices(), b.indices());
        assert_eq!(a.data(), b.data(), "open-batch reuse must be bit-identical");
        assert!(ra.stats.frontier_contractions > 0 || ra.stats.stem_flops > 0);

        let (sa, _) = reuse.sample(&fixed, 32, 11).unwrap();
        let (sb, _) = replay.sample(&fixed, 32, 11).unwrap();
        assert_eq!(sa, sb, "samples are a pure function of the (identical) distribution");
    }
}

#[test]
fn amortized_work_approaches_the_stem_only_floor() {
    // Across many executions of one compiled plan, the mean flops per
    // execute should approach frontier + stem — the branch build amortizes
    // away. This is the quantity the branch_reuse bench measures in time.
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let engine = Engine::with_configs(planner(), executor(true));
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();

    let mut total: u64 = 0;
    let mut steady: u64 = 0;
    let runs = 8u64;
    for (i, bits) in bitstrings(n, runs as usize).into_iter().enumerate() {
        let (_, report) = compiled.execute_amplitude(&bits).unwrap();
        total += report.stats.flops;
        if i > 0 {
            steady = report.stats.flops;
        }
    }
    let mean = total / runs;
    // The steady-state execute pays no branch flops, so the mean sits within
    // one branch-build of the floor.
    assert!(mean >= steady);
    assert!(mean - steady <= compiled.plan().branch_cache().unwrap().flops / runs + 1);
}
