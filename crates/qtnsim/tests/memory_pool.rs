//! Integration tests for lifetime-based memory planning and the pooled
//! zero-allocation stem sweep: pooling must be an *invisible* optimisation
//! (bit-identical amplitudes), the pool counters must prove the
//! zero-allocation steady state, and the plan-time peak prediction must
//! bound — in fact match — the measured buffer traffic.

use qtnsim::circuit::{OutputSpec, RqcConfig};
use qtnsim::{Circuit, Engine, ExecutorConfig, PlannerConfig};

/// The stem_reuse test plan: a 12-qubit RQC slicing |S| = 4 edges at
/// target rank 8 (16 subtasks per execution).
fn sliced_circuit() -> Circuit {
    RqcConfig::small(3, 4, 10, 5).build()
}

fn planner() -> PlannerConfig {
    PlannerConfig { target_rank: 8, ..Default::default() }
}

fn executor(pool: bool) -> ExecutorConfig {
    ExecutorConfig { workers: 4, max_subtasks: 0, reuse: true, pool }
}

fn bitstrings(n: usize, count: usize) -> Vec<Vec<u8>> {
    (0..count).map(|k| (0..n).map(|q| ((k >> (q % 5)) & 1) as u8).collect()).collect()
}

#[test]
fn pooled_and_unpooled_are_bit_identical_over_16_bitstrings() {
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Amplitude(vec![0; n]);

    let pooled = Engine::with_configs(planner(), executor(true));
    let unpooled = Engine::with_configs(planner(), executor(false));
    let a = pooled.compile(&circuit, &spec).unwrap();
    let b = unpooled.compile(&circuit, &spec).unwrap();
    assert_eq!(a.plan().num_subtasks(), 16);

    for bits in bitstrings(n, 16) {
        let (pa, ra) = a.execute_amplitude(&bits).unwrap();
        let (pb, rb) = b.execute_amplitude(&bits).unwrap();
        assert_eq!(pa, pb, "pooled execution must be bit-identical for {bits:?}");
        assert_eq!(ra.stats.stem_flops, rb.stats.stem_flops, "pooling changes no work");
        assert!(ra.stats.buffers_reused > 0, "a 16-subtask sweep must recycle buffers");
        assert_eq!(rb.stats.buffers_allocated, 0, "unpooled runs never touch the pool");
        assert_eq!(rb.stats.peak_bytes_in_flight, 0);
    }
}

#[test]
fn pooled_open_batches_are_bit_identical() {
    // Open outputs exercise the non-scalar root path: the root buffer is
    // recycled through the pool while its stacked copy feeds the output.
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Open { fixed: vec![0; n], open: vec![0, 3, 7] };
    let pooled = Engine::with_configs(planner(), executor(true));
    let unpooled = Engine::with_configs(planner(), executor(false));
    let a = pooled.compile(&circuit, &spec).unwrap();
    let b = unpooled.compile(&circuit, &spec).unwrap();
    for k in 0..4u8 {
        let fixed: Vec<u8> = (0..n).map(|q| (k >> (q % 2)) & 1).collect();
        let (ba, _) = a.execute_batch(&fixed).unwrap();
        let (bb, _) = b.execute_batch(&fixed).unwrap();
        assert_eq!(ba.data(), bb.data(), "pooled open batch must be bit-identical");
    }
    // Sampling rides on the same pooled path.
    let (sa, _) = a.sample(&vec![0; n], 32, 11).unwrap();
    let (sb, _) = b.sample(&vec![0; n], 32, 11).unwrap();
    assert_eq!(sa, sb);
}

#[test]
fn steady_state_sweeps_allocate_nothing() {
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let engine = Engine::with_configs(planner(), executor(true));
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    let plan = compiled.plan();
    let slots = plan.memory_plan.stem.num_slots() as u64;
    assert!(slots > 0);

    // The first execution warms each worker's pool on its first subtask:
    // exactly the predicted slot count per worker, nothing more — even
    // though each worker sweeps several subtasks.
    let (_, first) = compiled.execute_amplitude(&vec![0; n]).unwrap();
    assert_eq!(first.stats.buffers_allocated, first.stats.workers as u64 * slots);
    assert!(first.stats.buffers_reused > 0);

    // Pools persist on the compiled plan: every later execution — here a
    // 16-bitstring sweep — allocates zero buffers.
    for bits in bitstrings(n, 16) {
        let (_, report) = compiled.execute_amplitude(&bits).unwrap();
        assert_eq!(
            report.stats.buffers_allocated, 0,
            "steady-state execution must be allocation-free for {bits:?}"
        );
        assert!(report.stats.buffers_reused >= first.stats.buffers_reused);
    }
}

#[test]
fn measured_peak_never_exceeds_the_prediction() {
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let engine = Engine::with_configs(planner(), executor(true));
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    let predicted = compiled.plan().memory_plan.stem.peak_bytes();
    assert!(predicted > 0);
    assert_eq!(compiled.plan().predicted_peak_bytes(), compiled.plan().memory_plan.peak_bytes());

    for bits in bitstrings(n, 8) {
        let (_, report) = compiled.execute_amplitude(&bits).unwrap();
        assert_eq!(report.stats.predicted_peak_bytes, predicted);
        assert!(
            report.stats.peak_bytes_in_flight <= report.stats.predicted_peak_bytes,
            "measured peak {} exceeds prediction {}",
            report.stats.peak_bytes_in_flight,
            report.stats.predicted_peak_bytes
        );
        // The lifetime model mirrors the executor exactly, so the bound is
        // tight, not just safe.
        assert_eq!(report.stats.peak_bytes_in_flight, predicted);
    }
}

#[test]
fn slot_assignment_respects_live_set_maxima() {
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let engine = Engine::with_configs(planner(), executor(true));
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    let memory = &compiled.plan().memory_plan;
    for phase in [&memory.branch, &memory.frontier, &memory.stem] {
        let slots = phase.slot_count_by_rank();
        for (rank, peak) in phase.peak_live_by_rank() {
            assert!(
                slots.get(rank) <= Some(peak),
                "slot count must not exceed the live-set maximum for rank {rank}"
            );
        }
        assert!(phase.arena_bytes() >= phase.peak_bytes());
    }
    // The plan-level peak is the worst phase.
    let worst =
        memory.branch.peak_bytes().max(memory.frontier.peak_bytes()).max(memory.stem.peak_bytes());
    assert_eq!(memory.peak_bytes(), worst);
}

#[test]
fn memory_budget_is_enforced_end_to_end() {
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Amplitude(vec![0; n]);
    let predicted = Engine::with_configs(planner(), executor(true))
        .compile(&circuit, &spec)
        .unwrap()
        .plan()
        .predicted_peak_bytes();
    let budgeted = Engine::with_configs(
        PlannerConfig { memory_budget_bytes: Some(predicted / 2), ..planner() },
        executor(true),
    );
    match budgeted.compile(&circuit, &spec) {
        Err(qtnsim::Error::MemoryBudgetExceeded { predicted_bytes, budget_bytes }) => {
            assert_eq!(predicted_bytes, predicted);
            assert_eq!(budget_bytes, predicted / 2);
        }
        other => panic!("expected MemoryBudgetExceeded, got {other:?}"),
    }
}
