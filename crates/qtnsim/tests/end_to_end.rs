//! End-to-end integration tests spanning all crates: circuit generation →
//! planning → sliced parallel execution → validation against the
//! state-vector reference.

use qtnsim::core::{execute_plan, plan_simulation, ExecutorConfig, PlannerConfig, Simulator};
use qtnsim::statevector::StateVector;
use qtnsim::{Circuit, Engine, Gate, OutputSpec, RqcConfig};

fn amplitude_via_tn(circuit: &Circuit, bits: &[u8], target_rank: usize) -> qtnsim::Complex64 {
    let plan = plan_simulation(
        circuit,
        &OutputSpec::Amplitude(bits.to_vec()),
        &PlannerConfig { target_rank, ..Default::default() },
    );
    let (result, _) = execute_plan(&plan, &ExecutorConfig::default());
    result.scalar_value()
}

#[test]
fn random_circuits_match_statevector_across_slicing_targets() {
    for (seed, cycles) in [(1u64, 6usize), (2, 8), (3, 10)] {
        let circuit = RqcConfig::small(3, 3, cycles, seed).build();
        let n = circuit.num_qubits();
        let sv = StateVector::simulate(&circuit);
        let bits: Vec<u8> = (0..n).map(|q| ((q + seed as usize) % 2) as u8).collect();
        let expected = sv.amplitude(&bits);
        // The same amplitude must come out no matter how hard we slice.
        for target in [30usize, 10, 7, 5] {
            let got = amplitude_via_tn(&circuit, &bits, target);
            assert!(
                (got - expected).abs() < 1e-8,
                "seed {seed}, target {target}: {got:?} vs {expected:?}"
            );
        }
    }
}

#[test]
fn engine_compile_once_execute_many_round_trip() {
    // The acceptance criterion of the engine API: compile once, sweep many
    // bitstrings, match the state-vector reference to 1e-8, and never run
    // the planner more than once.
    let circuit = RqcConfig::small(2, 4, 8, 11).build();
    let n = circuit.num_qubits();
    let sv = StateVector::simulate(&circuit);
    let engine = Engine::new().with_planner(PlannerConfig { target_rank: 8, ..Default::default() });
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    for k in 0..32usize {
        let bits: Vec<u8> = (0..n).map(|q| ((k >> (q % 5)) & 1) as u8).collect();
        let (amp, report) = compiled.execute_amplitude(&bits).unwrap();
        assert!((amp - sv.amplitude(&bits)).abs() < 1e-8, "engine amplitude mismatch for {bits:?}");
        assert_eq!(report.stats.subtasks_run, compiled.plan().num_subtasks());
    }
    assert_eq!(engine.plans_built(), 1, "32 amplitudes must share one plan");
}

#[test]
fn simulator_api_round_trip() {
    let circuit = RqcConfig::small(2, 4, 8, 11).build();
    let n = circuit.num_qubits();
    let sv = StateVector::simulate(&circuit);
    let mut sim = Simulator::new(circuit)
        .with_planner(PlannerConfig { target_rank: 8, ..Default::default() });
    // Closed amplitude.
    let bits = vec![0u8; n];
    assert!((sim.amplitude(&bits) - sv.amplitude(&bits)).abs() < 1e-8);
    // Open batch over three qubits.
    let open = vec![2usize, 5, 7];
    let batch = sim.batch_amplitudes(&bits, &open);
    assert_eq!(batch.rank(), 3);
    for k in 0..8usize {
        let open_bits: Vec<u8> = (0..3).map(|a| ((k >> (2 - a)) & 1) as u8).collect();
        let mut full = bits.clone();
        for (i, &q) in open.iter().enumerate() {
            full[q] = open_bits[i];
        }
        assert!((batch.get(&open_bits) - sv.amplitude(&full)).abs() < 1e-8);
    }
    // Total probability of the open marginal cannot exceed 1.
    assert!(batch.norm_sqr() <= 1.0 + 1e-9);
}

#[test]
fn ghz_circuit_with_every_gate_flavour() {
    // Exercise a variety of gates through the full pipeline.
    let mut circuit = Circuit::new(5);
    circuit
        .push1(Gate::H, 0)
        .push2(Gate::Cnot, 0, 1)
        .push1(Gate::T, 1)
        .push1(Gate::SqrtX, 2)
        .push1(Gate::SqrtY, 3)
        .push1(Gate::SqrtW, 4)
        .push2(Gate::Cz, 1, 2)
        .push2(Gate::ISwap, 2, 3)
        .push2(Gate::sycamore_fsim(), 3, 4)
        .push1(Gate::Rz(0.3), 0)
        .push1(Gate::Rx(1.1), 2)
        .push1(Gate::Ry(-0.7), 4);
    let sv = StateVector::simulate(&circuit);
    let mut sim = Simulator::new(circuit);
    for bits in [[0, 0, 0, 0, 0], [1, 0, 1, 0, 1], [1, 1, 1, 1, 1]] {
        assert!((sim.amplitude(&bits) - sv.amplitude(&bits)).abs() < 1e-9);
    }
}

#[test]
fn planning_a_full_sycamore_network_is_tractable() {
    // Planning (not executing) the real 53-qubit geometry must work on a
    // laptop: this is the paper's process-level pipeline.
    let circuit = qtnsim::sycamore_rqc(10, 5);
    assert_eq!(circuit.num_qubits(), 53);
    let plan = plan_simulation(
        &circuit,
        &OutputSpec::Amplitude(vec![0; 53]),
        &PlannerConfig { target_rank: 30, path_candidates: 2, ..Default::default() },
    );
    // The un-sliced cost is astronomically large...
    assert!(plan.log_cost > 20.0);
    // ...but the sliced plan fits the per-node memory budget.
    assert!(plan.sliced_max_rank() <= 30);
    assert!(plan.overhead >= 1.0 - 1e-9);
    assert!(plan.overhead.is_finite());
}

#[test]
fn slicing_overhead_stays_moderate_on_structured_circuits() {
    // The paper's central claim: lifetime-guided slicing keeps the overhead
    // near 1 even when many edges must be sliced.
    let circuit = RqcConfig::small(4, 4, 12, 21).build();
    let plan = plan_simulation(
        &circuit,
        &OutputSpec::Amplitude(vec![0; 16]),
        &PlannerConfig { target_rank: 10, ..Default::default() },
    );
    assert!(plan.slicing.len() >= 2, "expected real slicing, got {}", plan.slicing.len());
    assert!(
        plan.overhead < 8.0,
        "slicing overhead {} too high for a structured circuit",
        plan.overhead
    );
}
