//! End-to-end SIMD determinism: the kernel dispatch introduced in the
//! tensor crate must be invisible at the simulator level except for speed.
//!
//! Two contracts are pinned here:
//!
//! 1. **Cross-path agreement.** The same circuit compiled with SIMD enabled
//!    and with the scalar override forced produces amplitudes within a
//!    documented tolerance (`1e-10` absolute — generous against the
//!    ~`1e-13` reordering error of the shapes these plans produce).
//! 2. **Determinism.** Repeated executions of one compiled plan — run
//!    sequentially or concurrently from many threads — are bit-identical,
//!    because every kernel freezes its dispatch at plan compile time and
//!    fixes its summation order.
//!
//! Tests serialize on a file-scoped mutex: the SIMD override is
//! process-global, and a concurrently running test could otherwise observe
//! a half-configured level.

use qtnsim::circuit::{OutputSpec, RqcConfig};
use qtnsim::tensor::{set_simd_override, simd_level, SimdLevel};
use qtnsim::{Circuit, Engine, ExecutorConfig, PlannerConfig};
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clears the override even if an assert unwinds mid-test.
struct RestoreOverride;

impl Drop for RestoreOverride {
    fn drop(&mut self) {
        set_simd_override(None);
    }
}

/// The 12-qubit sliced RQC the batching tests use: 4 sliced edges,
/// 16 subtasks, a stem worth replaying.
fn sliced_circuit() -> Circuit {
    RqcConfig::small(3, 4, 10, 5).build()
}

fn planner() -> PlannerConfig {
    PlannerConfig { target_rank: 8, ..Default::default() }
}

fn executor() -> ExecutorConfig {
    ExecutorConfig { workers: 4, max_subtasks: 0, reuse: true, pool: true }
}

fn bitstrings(n: usize) -> Vec<Vec<u8>> {
    // Deterministic spread of bitstrings without pulling in rand.
    (0..8u64).map(|s| (0..n).map(|q| (((s * 0x9E37_79B9) >> q) & 1) as u8).collect()).collect()
}

/// Documented SIMD-vs-scalar tolerance for these plans (see module docs).
const CROSS_PATH_TOL: f64 = 1e-10;

#[test]
fn simd_and_scalar_plans_agree_within_tolerance() {
    let _guard = lock();
    let _restore = RestoreOverride;
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Amplitude(vec![0; n]);
    let bits = bitstrings(n);

    // SIMD side: whatever the probe found (the override must be clear both
    // when the plan compiles and when it executes — kernels freeze their
    // level at compile time).
    set_simd_override(None);
    let simd_lv = simd_level();
    let engine = Engine::with_configs(planner(), executor());
    let compiled = engine.compile(&circuit, &spec).unwrap();
    let simd_amps: Vec<_> = bits.iter().map(|b| compiled.execute_amplitude(b).unwrap()).collect();
    for (_, report) in &simd_amps {
        assert_eq!(report.stats.simd_level, simd_lv.as_str());
        if simd_lv != SimdLevel::Scalar {
            assert!(
                report.stats.gemm_simd > 0,
                "a SIMD-levelled plan on this circuit must take SIMD paths"
            );
        }
    }

    // Scalar side: force the override *before* compiling a fresh plan, so
    // every kernel freezes at the scalar reference level.
    set_simd_override(Some(SimdLevel::Scalar));
    let engine_scalar = Engine::with_configs(planner(), executor());
    let compiled_scalar = engine_scalar.compile(&circuit, &spec).unwrap();
    for (b, (simd_amp, _)) in bits.iter().zip(simd_amps.iter()) {
        let (scalar_amp, report) = compiled_scalar.execute_amplitude(b).unwrap();
        assert_eq!(report.stats.gemm_simd, 0, "forced-scalar plans never take a SIMD path");
        assert_eq!(report.stats.simd_level, "scalar");
        assert!(
            (*simd_amp - scalar_amp).abs() <= CROSS_PATH_TOL,
            "SIMD vs scalar amplitude diverged for {b:?}: {simd_amp:?} vs {scalar_amp:?}"
        );
    }

    // The batched API agrees across paths too.
    let batch: Vec<&[u8]> = bits.iter().map(Vec::as_slice).collect();
    set_simd_override(None);
    let (batch_simd, _) = compiled.execute_amplitudes(&batch).unwrap();
    set_simd_override(Some(SimdLevel::Scalar));
    let (batch_scalar, _) = compiled_scalar.execute_amplitudes(&batch).unwrap();
    for (b, (s, sc)) in bits.iter().zip(batch_simd.iter().zip(batch_scalar.iter())) {
        assert!(
            (*s - *sc).abs() <= CROSS_PATH_TOL,
            "batched SIMD vs scalar diverged for {b:?}: {s:?} vs {sc:?}"
        );
    }
}

#[test]
fn repeated_simd_runs_are_bit_identical_sequentially() {
    let _guard = lock();
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let engine = Engine::with_configs(planner(), executor());
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    let bits = bitstrings(n);
    let batch: Vec<&[u8]> = bits.iter().map(Vec::as_slice).collect();

    let baseline: Vec<_> = bits.iter().map(|b| compiled.execute_amplitude(b).unwrap().0).collect();
    let (batch_baseline, base_report) = compiled.execute_amplitudes(&batch).unwrap();
    for _ in 0..3 {
        for (b, base) in bits.iter().zip(baseline.iter()) {
            let (amp, _) = compiled.execute_amplitude(b).unwrap();
            assert_eq!(amp.re.to_bits(), base.re.to_bits(), "re drifted for {b:?}");
            assert_eq!(amp.im.to_bits(), base.im.to_bits(), "im drifted for {b:?}");
        }
        let (amps, report) = compiled.execute_amplitudes(&batch).unwrap();
        for (amp, base) in amps.iter().zip(batch_baseline.iter()) {
            assert_eq!(amp.re.to_bits(), base.re.to_bits());
            assert_eq!(amp.im.to_bits(), base.im.to_bits());
        }
        // The dispatch tally is a pure function of the frozen plans, so it
        // repeats exactly as well.
        assert_eq!(report.stats.gemm_micro, base_report.stats.gemm_micro);
        assert_eq!(report.stats.gemm_gemv, base_report.stats.gemm_gemv);
        assert_eq!(report.stats.gemm_narrow, base_report.stats.gemm_narrow);
        assert_eq!(report.stats.gemm_blocked, base_report.stats.gemm_blocked);
        assert_eq!(report.stats.gemm_simd, base_report.stats.gemm_simd);
    }
}

#[test]
fn concurrent_simd_runs_are_bit_identical() {
    let _guard = lock();
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let engine = Engine::with_configs(planner(), executor());
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    let bits = bitstrings(n);

    // Warm the branch cache so every thread prices identical work.
    let baseline: Vec<_> = bits.iter().map(|b| compiled.execute_amplitude(b).unwrap().0).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let compiled = &compiled;
                let bits = &bits;
                scope.spawn(move || {
                    bits.iter()
                        .map(|b| compiled.execute_amplitude(b).unwrap().0)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            let amps = handle.join().unwrap();
            for (amp, base) in amps.iter().zip(baseline.iter()) {
                assert_eq!(amp.re.to_bits(), base.re.to_bits(), "concurrent re drifted");
                assert_eq!(amp.im.to_bits(), base.im.to_bits(), "concurrent im drifted");
            }
        }
    });
}
