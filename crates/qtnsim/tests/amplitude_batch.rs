//! Integration tests for batched multi-amplitude execution: the four-class
//! reuse lattice must make `execute_amplitudes` an *invisible* optimisation
//! — bit-identical to a loop of single executions, pooled and unpooled —
//! while its counters prove the amortization (the StemPure prefix runs
//! exactly once per subtask regardless of batch size) and the batched
//! lifetime phase predicts the pooled peak exactly.

use qtnsim::circuit::{Gate, OutputSpec, RqcConfig};
use qtnsim::{Circuit, Engine, ExecutorConfig, PlannerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 12-qubit RQC whose plan slices 4 edges at target rank 8 (16 subtasks).
fn sliced_circuit() -> Circuit {
    RqcConfig::small(3, 4, 10, 5).build()
}

fn planner() -> PlannerConfig {
    PlannerConfig { target_rank: 8, ..Default::default() }
}

fn executor(pool: bool) -> ExecutorConfig {
    ExecutorConfig { workers: 4, max_subtasks: 0, reuse: true, pool }
}

fn random_bitstrings(n: usize, count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| (0..n).map(|_| rng.gen_range(0..2u32) as u8).collect()).collect()
}

#[test]
fn batched_is_bit_identical_to_sequential_pooled_and_unpooled() {
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Amplitude(vec![0; n]);
    let bitstrings = random_bitstrings(n, 32, 42);

    for pool in [true, false] {
        let engine = Engine::with_configs(planner(), executor(pool));
        let compiled = engine.compile(&circuit, &spec).unwrap();
        assert_eq!(compiled.plan().slicing.len(), 4, "this configuration slices |S| = 4 edges");

        let batch: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();
        let (amps, report) = compiled.execute_amplitudes(&batch).unwrap();
        assert_eq!(amps.len(), 32);
        assert_eq!(report.stats.amplitudes_in_batch, 32);

        // The sequential loop the batch replaces, on the *same* compiled
        // plan (sharing the branch cache), must agree bit for bit.
        for (bits, batched) in bitstrings.iter().zip(amps.iter()) {
            let (single, _) = compiled.execute_amplitude(bits).unwrap();
            assert_eq!(
                single, *batched,
                "batched amplitude must be bit-identical for {bits:?} (pool={pool})"
            );
        }
    }
}

#[test]
fn pure_prefix_runs_once_per_subtask_regardless_of_batch_size() {
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Amplitude(vec![0; n]);
    let engine = Engine::with_configs(planner(), executor(true));
    let compiled = engine.compile(&circuit, &spec).unwrap();
    let subtasks = compiled.plan().num_subtasks();
    let (_, _, pure, mixed) = compiled.plan().classification.contraction_counts();
    assert!(pure > 0, "the stem must have a StemPure prefix worth amortizing");
    assert!(mixed > 0, "projectors join the sliced spine somewhere");

    let mut pure_flops = None;
    for batch_size in [1usize, 8, 32] {
        let bitstrings = random_bitstrings(n, batch_size, batch_size as u64);
        let batch: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();
        let (_, report) = compiled.execute_amplitudes(&batch).unwrap();
        let stats = &report.stats;
        assert_eq!(
            stats.stem_pure_contractions,
            (pure * subtasks) as u64,
            "StemPure contractions must run exactly once per subtask (B={batch_size})"
        );
        assert!(stats.stem_pure_flops > 0);
        if let Some(seen) = pure_flops {
            assert_eq!(stats.stem_pure_flops, seen, "pure work is batch-size invariant");
        }
        pure_flops = Some(stats.stem_pure_flops);
        assert_eq!(
            stats.stem_pure_flops_reused,
            stats.stem_pure_flops * (batch_size as u64 - 1),
            "a loop of singles would replay the prefix per bitstring"
        );
        assert_eq!(stats.amplitudes_in_batch, batch_size as u64);
        // The frontier absorbs the rebound bits, but its subtrees dedup
        // across the batch: each contraction runs once per *distinct*
        // key, bounded by one full build below and one per bitstring
        // above.
        let (_, single) = compiled.execute_amplitude(&bitstrings[0]).unwrap();
        assert!(stats.frontier_contractions >= single.stats.frontier_contractions);
        assert!(
            stats.frontier_contractions <= single.stats.frontier_contractions * batch_size as u64
        );
        if batch_size > 1 {
            assert!(
                stats.frontier_contractions
                    < single.stats.frontier_contractions * batch_size as u64,
                "a batch of near-identical bitstrings must dedup some frontier work"
            );
        }
        // Phase split stays exhaustive.
        assert_eq!(
            stats.flops,
            stats.stem_flops + stats.frontier_flops + stats.branch_flops,
            "per-phase flop split must add up"
        );
    }
}

#[test]
fn batched_pooled_peak_matches_prediction_and_stays_zero_alloc() {
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Amplitude(vec![0; n]);
    let engine = Engine::with_configs(planner(), executor(true));
    let compiled = engine.compile(&circuit, &spec).unwrap();
    let bitstrings = random_bitstrings(n, 16, 7);
    let batch: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();

    let (_, cold) = compiled.execute_amplitudes(&batch).unwrap();
    assert_eq!(
        cold.stats.predicted_peak_bytes,
        compiled.plan().predicted_batched_peak_bytes(),
        "batched executions are checked against the batched lifetime phase"
    );
    assert_eq!(
        cold.stats.peak_bytes_in_flight, cold.stats.predicted_peak_bytes,
        "the batched acquire/release sequence must mirror the simulation exactly"
    );
    assert!(cold.stats.buffers_allocated > 0, "cold pools must warm up");

    // Warm batched sweep: the steady state allocates nothing, and the peak
    // stays exactly at the prediction.
    let (_, warm) = compiled.execute_amplitudes(&batch).unwrap();
    assert_eq!(warm.stats.buffers_allocated, 0, "warm batched sweep must be allocation-free");
    assert!(warm.stats.buffers_reused > 0);
    assert_eq!(warm.stats.peak_bytes_in_flight, warm.stats.predicted_peak_bytes);

    // Batching holds the StemPure keep set across the bitstring loop, so
    // its peak can only meet or exceed the single-execution stem phase.
    assert!(
        compiled.plan().predicted_batched_peak_bytes()
            >= compiled.plan().memory_plan.stem.peak_bytes()
    );
}

#[test]
fn unsliced_plans_batch_too() {
    // A loose target leaves the plan unsliced: the batch degenerates to one
    // frontier build per bitstring reading the cached root.
    let circuit = RqcConfig::small(2, 3, 6, 9).build();
    let n = circuit.num_qubits();
    let engine = Engine::with_configs(
        PlannerConfig { target_rank: 40, ..Default::default() },
        executor(true),
    );
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    assert!(compiled.plan().slicing.is_empty());
    let bitstrings = random_bitstrings(n, 8, 3);
    let batch: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();
    let (amps, report) = compiled.execute_amplitudes(&batch).unwrap();
    assert_eq!(report.stats.stem_flops, 0, "nothing depends on a slice assignment");
    let sv = qtnsim::statevector::StateVector::simulate(&circuit);
    for (bits, amp) in bitstrings.iter().zip(amps.iter()) {
        assert!((*amp - sv.amplitude(bits)).abs() < 1e-8, "amplitude mismatch for {bits:?}");
    }
}

#[test]
fn batched_amortization_beats_the_sequential_flop_bill() {
    let circuit = sliced_circuit();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Amplitude(vec![0; n]);
    let engine = Engine::with_configs(planner(), executor(true));
    let compiled = engine.compile(&circuit, &spec).unwrap();
    let bitstrings = random_bitstrings(n, 32, 17);
    let batch: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();

    // Warm the branch cache so both sides price steady-state work.
    compiled.execute_amplitude(&bitstrings[0]).unwrap();
    let (_, batched) = compiled.execute_amplitudes(&batch).unwrap();
    let singles: Vec<_> =
        bitstrings.iter().map(|bits| compiled.execute_amplitude(bits).unwrap().1.stats).collect();
    let sequential: u64 = singles.iter().map(|s| s.flops).sum();
    assert!(
        batched.stats.flops < sequential,
        "batching must execute fewer flops ({} vs {})",
        batched.stats.flops,
        sequential
    );
    // The stem-side saving is exactly the replayed StemPure work plus the
    // keyed-cache StemMixed skips; the frontier dedup saves on top of it.
    let sequential_stem: u64 = singles.iter().map(|s| s.stem_flops).sum();
    assert_eq!(
        batched.stats.stem_flops
            + batched.stats.stem_pure_flops_reused
            + batched.stats.stem_mixed_flops_reused,
        sequential_stem,
        "what the batched stem saved is exactly the replayed StemPure and deduped StemMixed work"
    );
    assert!(
        batched.stats.stem_mixed_flops_reused > 0,
        "32 bitstrings over narrow mixed cones must dedup some StemMixed work"
    );
    let sequential_frontier: u64 = singles.iter().map(|s| s.frontier_flops).sum();
    assert!(
        batched.stats.frontier_flops < sequential_frontier,
        "frontier dedup must save work across 32 bitstrings"
    );
}

/// A 10-qubit GHZ-style ladder (CNOT chain, then a T/CZ brickwork layer,
/// then Hadamards) planned at target rank 2: the mixed suffix's dependency
/// cones span widths 1 through all 10 output qubits, exercising the keyed
/// dedup from single-projector joins up to the fully dependent root.
fn ladder_circuit(n: usize) -> Circuit {
    let mut circuit = Circuit::new(n);
    circuit.push1(Gate::H, 0);
    for q in 0..n - 1 {
        circuit.push2(Gate::Cnot, q, q + 1);
    }
    for q in 0..n - 1 {
        circuit.push1(Gate::T, q);
        circuit.push2(Gate::Cz, q, q + 1);
    }
    for q in 0..n {
        circuit.push1(Gate::H, q);
    }
    circuit
}

#[test]
fn mixed_cones_from_one_qubit_to_full_output_stay_bit_identical() {
    let n = 10;
    let circuit = ladder_circuit(n);
    let spec = OutputSpec::Amplitude(vec![0; n]);
    let bitstrings = random_bitstrings(n, 16, 23);

    for pool in [true, false] {
        let engine = Engine::with_configs(
            PlannerConfig { target_rank: 2, ..Default::default() },
            executor(pool),
        );
        let compiled = engine.compile(&circuit, &spec).unwrap();
        let plan = compiled.plan();
        let masks = plan.classification.projector_masks();
        let widths: Vec<usize> = plan
            .classification
            .stem_mixed_schedule()
            .iter()
            .map(|&(_, _, out)| masks.popcount(out))
            .collect();
        assert!(widths.contains(&1), "a single-projector join must be StemMixed: {widths:?}");
        assert!(
            widths.iter().any(|&w| w > 1 && w < n),
            "an intermediate-width cone must be StemMixed: {widths:?}"
        );
        assert!(widths.contains(&n), "the root depends on every output qubit: {widths:?}");

        let batch: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();
        let (amps, report) = compiled.execute_amplitudes(&batch).unwrap();
        assert!(
            report.stats.stem_mixed_flops_reused > 0,
            "narrow cones see at most 2^w distinct keys, so B=16 must dedup (pool={pool})"
        );
        if pool {
            assert_eq!(
                report.stats.peak_bytes_in_flight, report.stats.predicted_peak_bytes,
                "keyed suffix must still hit the predicted peak exactly"
            );
        }
        for (bits, batched) in bitstrings.iter().zip(amps.iter()) {
            let (single, _) = compiled.execute_amplitude(bits).unwrap();
            assert_eq!(
                single, *batched,
                "batched amplitude must be bit-identical for {bits:?} (pool={pool})"
            );
        }
    }
}

#[test]
fn each_distinct_subtask_key_contraction_runs_exactly_once_on_nested_cones() {
    // This 9-qubit RQC's mixed dependency masks are totally ordered by
    // containment (a chain), so the cost-weighted narrowest-first sort
    // groups *every* mixed node perfectly: contraction counts must hit the
    // distinct-key floor exactly, at any batch size.
    let circuit = RqcConfig::small(3, 3, 8, 13).build();
    let n = circuit.num_qubits();
    let spec = OutputSpec::Amplitude(vec![0; n]);
    let engine = Engine::with_configs(
        PlannerConfig { target_rank: 7, ..Default::default() },
        executor(true),
    );
    let compiled = engine.compile(&circuit, &spec).unwrap();
    let plan = compiled.plan();
    let masks = plan.classification.projector_masks();
    let cones: Vec<Vec<usize>> = plan
        .classification
        .stem_mixed_schedule()
        .iter()
        .map(|&(_, _, out)| masks.ordinals(out).collect())
        .collect();
    for a in &cones {
        for b in &cones {
            assert!(
                a.iter().all(|o| b.contains(o)) || b.iter().all(|o| a.contains(o)),
                "test premise: masks form a chain"
            );
        }
    }
    let sched_len = plan.classification.stem_mixed_schedule().len() as u64;
    let subtasks = plan.num_subtasks() as u64;

    for batch_size in [8usize, 64] {
        let bitstrings = random_bitstrings(n, batch_size, 1000 + batch_size as u64);
        let batch: Vec<&[u8]> = bitstrings.iter().map(Vec::as_slice).collect();
        let (_, report) = compiled.execute_amplitudes(&batch).unwrap();
        let stats = &report.stats;
        assert!(stats.stem_mixed_distinct_keys > 0);
        assert!(stats.stem_mixed_distinct_keys <= sched_len * batch_size as u64);
        assert_eq!(
            stats.stem_mixed_contractions,
            stats.stem_mixed_distinct_keys * subtasks,
            "each distinct (subtask, dependent-bits) contraction runs exactly once (B={batch_size})"
        );
        assert_eq!(
            stats.stem_mixed_contractions + stats.stem_mixed_contractions_deduped,
            sched_len * batch_size as u64 * subtasks,
            "executed + skipped must cover the per-bitstring mixed bill (B={batch_size})"
        );
        assert_eq!(
            stats.stem_mixed_flops,
            stats.stem_flops - stats.stem_pure_flops,
            "executed mixed flops split exactly off the stem total"
        );
        if batch_size == 64 {
            assert!(
                stats.stem_mixed_contractions_deduped > 0,
                "64 random bitstrings over narrow nested cones must repeat keys"
            );
        }
    }
}
