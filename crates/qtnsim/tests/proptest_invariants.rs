//! Randomized tests of the core invariants, spanning crates.
//!
//! Formerly written against `proptest`; the build environment has no access
//! to crates.io, so the same properties are now exercised as seeded
//! randomized loops (64 cases each, matching the old `ProptestConfig`).
//!
//! These check the algebraic properties the whole system relies on:
//! * tensor permutation is a bijection and composes correctly;
//! * slicing + summation is exact (slice any edge, sum the halves, get the
//!   original contraction back);
//! * the lifetime-based slicing machinery always produces feasible plans and
//!   overhead ≥ 1;
//! * GEMM kernels agree with the naive reference for arbitrary shapes.

use qtnsim::circuit::circuit_to_network;
use qtnsim::slicing::overhead::{sliced_max_rank, slicing_overhead};
use qtnsim::slicing::{compute_lifetimes, lifetime_slice_finder};
use qtnsim::tensor::gemm::{gemm_auto, gemm_reference};
use qtnsim::tensor::permute::{permute, PermutePlan};
use qtnsim::tensor::{c64, contract_pair, Complex64, DenseTensor, IndexSet};
use qtnsim::tensornet::{
    extract_stem, greedy_path, simplify_network, ContractionTree, PathConfig, TensorNetwork,
};
use qtnsim::{OutputSpec, RqcConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn random_tensor(rng: &mut StdRng, rank: usize) -> DenseTensor<Complex64> {
    let data: Vec<Complex64> = (0..1usize << rank)
        .map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    DenseTensor::from_data(IndexSet::new((0..rank as u32).collect()), data)
}

fn random_permutation(rng: &mut StdRng, rank: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..rank).collect();
    for i in (1..rank).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[test]
fn permutation_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let rank = rng.gen_range(1..7);
        let t = random_tensor(&mut rng, rank);
        let perm = random_permutation(&mut rng, rank);
        let mut inverse = vec![0usize; rank];
        for (new, &old) in perm.iter().enumerate() {
            inverse[old] = new;
        }
        let back = permute(&permute(&t, &perm), &inverse);
        assert_eq!(back, t, "seed {seed}");
    }
}

#[test]
fn reduced_plan_equals_full_plan() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let rank = rng.gen_range(2..7);
        let t = random_tensor(&mut rng, rank);
        let perm = random_permutation(&mut rng, rank);
        let full = PermutePlan::full(rank, &perm).apply(&t);
        let reduced = PermutePlan::reduced(rank, &perm).apply(&t);
        assert_eq!(full, reduced, "seed {seed}");
    }
}

#[test]
fn slice_and_sum_reproduces_contraction() {
    let mut checked = 0usize;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let rank_a = rng.gen_range(2..6);
        let a = random_tensor(&mut rng, rank_a);
        let rank_b = rng.gen_range(2..6);
        let b = random_tensor(&mut rng, rank_b);
        // Give the tensors overlapping index names: `b`'s axes are shifted so
        // that at least one index is shared.
        let axis = rng.gen_range(0usize..2) as u32;
        let shift = (a.rank() as u32).saturating_sub(1 + axis % a.rank() as u32);
        let b_axes: Vec<u32> = (0..b.rank() as u32).map(|i| i + shift).collect();
        let b = DenseTensor::from_data(IndexSet::new(b_axes), b.data().to_vec());
        let shared: Vec<u32> = a.indices().intersection(b.indices());
        if shared.is_empty() {
            continue;
        }
        checked += 1;
        let edge = shared[0];

        let direct = contract_pair(&a, &b);
        // Slice the shared edge on both operands and sum the two halves.
        let mut summed: Option<DenseTensor<Complex64>> = None;
        for bit in 0..2u8 {
            let part = contract_pair(&a.slice_index(edge, bit), &b.slice_index(edge, bit));
            summed = Some(match summed {
                None => part,
                Some(mut acc) => {
                    let aligned = qtnsim::tensor::permute::permute_to_order(&part, acc.indices());
                    acc.accumulate(&aligned);
                    acc
                }
            });
        }
        let summed = qtnsim::tensor::permute::permute_to_order(&summed.unwrap(), direct.indices());
        for (x, y) in direct.data().iter().zip(summed.data().iter()) {
            assert!((*x - *y).abs() < 1e-9, "seed {seed}");
        }
    }
    assert!(checked > CASES as usize / 2, "too few cases had a shared edge: {checked}");
}

#[test]
fn gemm_kernels_agree_with_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let (m, n, k) = (rng.gen_range(1..24), rng.gen_range(1..24), rng.gen_range(1..24));
        let a: Vec<Complex64> =
            (0..m * k).map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect();
        let b: Vec<Complex64> =
            (0..k * n).map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect();
        let mut c_ref = vec![Complex64::ZERO; m * n];
        let mut c_opt = vec![Complex64::ZERO; m * n];
        gemm_reference(&a, &b, &mut c_ref, m, n, k);
        gemm_auto(&a, &b, &mut c_opt, m, n, k);
        for (x, y) in c_ref.iter().zip(c_opt.iter()) {
            assert!((*x - *y).abs() < 1e-9, "seed {seed} shape {m}x{n}x{k}");
        }
    }
}

#[test]
fn slicing_plans_are_always_feasible() {
    for case in 0..40 {
        let mut rng = StdRng::seed_from_u64(4000 + case);
        let seed = case;
        let cycles = rng.gen_range(6..11);
        let delta = rng.gen_range(1..5);
        let circuit = RqcConfig::small(3, 3, cycles, seed).build();
        let build = circuit_to_network(&circuit, &OutputSpec::Amplitude(vec![0; 9]));
        let network = TensorNetwork::from_build(&build);
        let mut work = network.clone();
        let mut pairs = simplify_network(&mut work);
        pairs.extend(greedy_path(&mut work, &PathConfig::default()));
        let tree = ContractionTree::from_pairs(&network, &pairs);
        let stem = extract_stem(&tree);
        let full = sliced_max_rank(&stem, &[]);
        let target = full.saturating_sub(delta).max(3);
        let plan = lifetime_slice_finder(&stem, target);
        assert!(sliced_max_rank(&stem, &plan.sliced) <= target, "case {case}");
        let overhead = slicing_overhead(&stem, &plan.sliced);
        assert!(overhead >= 1.0 - 1e-9, "case {case}");
        assert!(overhead.is_finite(), "case {case}");
    }
}

#[test]
fn lifetimes_partition_stem_tensor_ranks() {
    // The sum of lifetime lengths equals the sum of stem tensor ranks —
    // every (tensor, index) incidence is counted exactly once.
    for seed in 0..40 {
        let circuit = RqcConfig::small(3, 3, 8, seed).build();
        let build = circuit_to_network(&circuit, &OutputSpec::Amplitude(vec![0; 9]));
        let network = TensorNetwork::from_build(&build);
        let mut work = network.clone();
        let mut pairs = simplify_network(&mut work);
        pairs.extend(greedy_path(&mut work, &PathConfig::default()));
        let tree = ContractionTree::from_pairs(&network, &pairs);
        let stem = extract_stem(&tree);
        let table = compute_lifetimes(&stem);
        let lifetime_sum: usize = table.edges().map(|e| table.length(e)).sum();
        let rank_sum: usize =
            stem.start_indices.len() + stem.steps.iter().map(|s| s.result.len()).sum::<usize>();
        assert_eq!(lifetime_sum, rank_sum, "seed {seed}");
    }
}
