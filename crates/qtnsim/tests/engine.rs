//! Integration tests of the compile-once / execute-many engine API:
//! compiled-plan reuse is *bit-identical* to fresh planning, plan-cache hits
//! skip the planner (asserted via the planning counter), and the engine is
//! deterministic under concurrent executes.

use qtnsim::core::{Engine, ExecutorConfig, PlannerConfig};
use qtnsim::statevector::StateVector;
use qtnsim::{Complex64, Error, OutputSpec, RqcConfig};

fn planner() -> PlannerConfig {
    PlannerConfig { target_rank: 8, ..Default::default() }
}

fn test_engine() -> Engine {
    // A fixed worker count keeps the subtask striding identical across
    // engines regardless of the host's core count.
    Engine::with_configs(
        planner(),
        ExecutorConfig { workers: 4, max_subtasks: 0, ..Default::default() },
    )
}

/// 24 deterministic probe bitstrings covering varied patterns.
fn probe_bitstrings(n: usize) -> Vec<Vec<u8>> {
    (0..24usize).map(|k| (0..n).map(|q| (((k * 37 + 11) >> (q % 5)) & 1) as u8).collect()).collect()
}

#[test]
fn compiled_reuse_is_bit_identical_to_fresh_planning() {
    let circuit = RqcConfig::small(3, 3, 8, 17).build();
    let n = circuit.num_qubits();
    let sv = StateVector::simulate(&circuit);

    let engine = test_engine();
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();

    let bitstrings = probe_bitstrings(n);
    assert!(bitstrings.len() >= 20);
    for bits in &bitstrings {
        let (reused, _) = compiled.execute_amplitude(bits).unwrap();

        // A throwaway engine plans this bitstring from scratch.
        let fresh_engine = test_engine();
        let fresh = fresh_engine.compile(&circuit, &OutputSpec::Amplitude(bits.clone())).unwrap();
        let (replanned, _) = fresh.execute_amplitude(bits).unwrap();

        // Same plan, same deterministic executor: reuse must be exact to the
        // last bit, not merely within tolerance.
        assert_eq!(
            (reused.re.to_bits(), reused.im.to_bits()),
            (replanned.re.to_bits(), replanned.im.to_bits()),
            "reused plan diverged from fresh planning for {bits:?}"
        );
        // And both must be correct against the reference.
        assert!((reused - sv.amplitude(bits)).abs() < 1e-8, "amplitude wrong for {bits:?}");
    }
    // The sweep above never re-planned on the reuse engine.
    assert_eq!(engine.plans_built(), 1, "planner must run exactly once");
}

#[test]
fn plan_cache_hit_does_not_rerun_the_refiner() {
    let circuit = RqcConfig::small(3, 3, 8, 23).build();
    let n = circuit.num_qubits();
    let engine = test_engine();

    // First compile: planning pipeline (incl. SA refiner) runs once.
    let a = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    assert!(!a.plan_cache_hit());
    assert_eq!(engine.plans_built(), 1);

    // Same circuit, different bits, same output shape: cache hit, the
    // planning counter must not move.
    for k in 1..6u8 {
        let bits: Vec<u8> = (0..n).map(|q| ((k as usize >> (q % 3)) & 1) as u8).collect();
        let c = engine.compile(&circuit, &OutputSpec::Amplitude(bits)).unwrap();
        assert!(c.plan_cache_hit());
    }
    assert_eq!(engine.plans_built(), 1, "cache hits must not re-run the planner");
    assert_eq!(engine.cache_hits(), 5);

    // The cached plan is shared, not rebuilt: both compilations expose the
    // same slicing decision.
    let b = engine.compile(&circuit, &OutputSpec::Amplitude(vec![1; n])).unwrap();
    assert_eq!(a.plan().slicing, b.plan().slicing);
    assert_eq!(a.plan().pairs, b.plan().pairs);
}

#[test]
fn engine_is_deterministic_under_concurrent_executes() {
    let circuit = RqcConfig::small(3, 3, 8, 29).build();
    let n = circuit.num_qubits();
    let engine = test_engine();
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    let bitstrings = probe_bitstrings(n);

    // Serial baseline.
    let baseline: Vec<Complex64> =
        bitstrings.iter().map(|bits| compiled.execute_amplitude(bits).unwrap().0).collect();

    // Hammer the same compiled circuit from several threads at once; every
    // thread must reproduce the baseline bit-for-bit.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    bitstrings
                        .iter()
                        .map(|bits| compiled.execute_amplitude(bits).unwrap().0)
                        .collect::<Vec<Complex64>>()
                })
            })
            .collect();
        for handle in handles {
            let results = handle.join().unwrap();
            for (got, want) in results.iter().zip(baseline.iter()) {
                assert_eq!(
                    (got.re.to_bits(), got.im.to_bits()),
                    (want.re.to_bits(), want.im.to_bits()),
                    "concurrent execution diverged from serial baseline"
                );
            }
        }
    });
    assert_eq!(engine.plans_built(), 1);
}

#[test]
fn open_shape_reuse_rebinds_fixed_bits() {
    let circuit = RqcConfig::small(2, 3, 6, 31).build();
    let n = circuit.num_qubits();
    let sv = StateVector::simulate(&circuit);
    let engine = test_engine();
    let open = vec![1usize, 4];
    let compiled = engine
        .compile(&circuit, &OutputSpec::Open { fixed: vec![0; n], open: open.clone() })
        .unwrap();

    // Two different projections of the non-open qubits execute on one plan.
    for fixed_bit in [0u8, 1] {
        let fixed: Vec<u8> = (0..n).map(|_| fixed_bit).collect();
        let (batch, _) = compiled.execute_batch(&fixed).unwrap();
        for b0 in 0..2u8 {
            for b1 in 0..2u8 {
                let mut bits = fixed.clone();
                bits[open[0]] = b0;
                bits[open[1]] = b1;
                assert!(
                    (batch.get(&[b0, b1]) - sv.amplitude(&bits)).abs() < 1e-8,
                    "open batch wrong at {b0}{b1} with fixed={fixed_bit}"
                );
            }
        }
    }
    assert_eq!(engine.plans_built(), 1);
}

#[test]
fn validation_errors_do_not_reach_the_planner() {
    let circuit = RqcConfig::small(2, 2, 4, 1).build();
    let n = circuit.num_qubits();
    let engine = test_engine();
    assert!(matches!(
        engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n + 1])).unwrap_err(),
        Error::BitstringLength { .. }
    ));
    assert!(matches!(
        engine.compile(&circuit, &OutputSpec::Amplitude(vec![9; n])).unwrap_err(),
        Error::InvalidBit { .. }
    ));
    assert_eq!(engine.plans_built(), 0);

    // Execute-time validation: wrong length and wrong shape are typed.
    let compiled = engine.compile(&circuit, &OutputSpec::Amplitude(vec![0; n])).unwrap();
    assert!(matches!(
        compiled.execute_amplitude(&vec![0; n - 1]).unwrap_err(),
        Error::BitstringLength { .. }
    ));
    assert!(matches!(
        compiled.execute_batch(&vec![0; n]).unwrap_err(),
        Error::OutputShapeMismatch { .. }
    ));
}
