//! Reference state-vector simulator.
//!
//! The traditional full-state-vector method stores all `2^n` amplitudes and
//! applies gates in place, which limits it to a few dozen qubits — exactly
//! the limitation the tensor-network contraction approach removes. Here it
//! serves as the ground truth the TNC simulator is validated against: for
//! circuits up to ~24 qubits every amplitude (or batch of amplitudes) the
//! sliced contraction produces must match this simulator to numerical
//! precision.

#![warn(missing_docs)]

use qtn_circuit::{Circuit, GateOp};
use qtn_tensor::{Complex64, Scalar};

/// A full state vector over `n` qubits.
///
/// Amplitude indexing: qubit 0 is the most significant bit of the state
/// index, matching the axis convention of `qtn-tensor` (axis 0 most
/// significant) and the bitstring order used by
/// [`qtn_circuit::OutputSpec::Amplitude`].
#[derive(Debug, Clone)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex64>,
}

impl StateVector {
    /// Practical qubit limit (2^26 amplitudes = 1 GiB of complex64).
    pub const MAX_QUBITS: usize = 26;

    /// The all-zeros product state |0…0⟩.
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= Self::MAX_QUBITS,
            "state vector limited to {} qubits",
            Self::MAX_QUBITS
        );
        let mut amplitudes = vec![Complex64::ZERO; 1usize << num_qubits];
        amplitudes[0] = Complex64::ONE;
        Self { num_qubits, amplitudes }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Borrow all amplitudes.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amplitudes
    }

    /// Amplitude of a computational-basis state given as bits per qubit
    /// (`bits[q]` is qubit `q`).
    pub fn amplitude(&self, bits: &[u8]) -> Complex64 {
        assert_eq!(bits.len(), self.num_qubits);
        let mut idx = 0usize;
        for &b in bits {
            idx = (idx << 1) | (b as usize & 1);
        }
        self.amplitudes[idx]
    }

    /// Total probability (should stay 1 under unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Apply a single gate operation in place.
    pub fn apply(&mut self, op: &GateOp) {
        let m = op.gate.matrix();
        match op.qubits.len() {
            1 => self.apply1(&m, op.qubits[0]),
            2 => self.apply2(&m, op.qubits[0], op.qubits[1]),
            a => unreachable!("unsupported arity {a}"),
        }
    }

    /// Apply a whole circuit in place.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.num_qubits(), self.num_qubits, "qubit count mismatch");
        for op in circuit.ops() {
            self.apply(op);
        }
    }

    /// Simulate a circuit from |0…0⟩.
    pub fn simulate(circuit: &Circuit) -> Self {
        let mut sv = Self::zero_state(circuit.num_qubits());
        sv.apply_circuit(circuit);
        sv
    }

    fn apply1(&mut self, m: &[Complex64], q: usize) {
        let n = self.num_qubits;
        let stride = 1usize << (n - 1 - q);
        let len = self.amplitudes.len();
        let mut base = 0;
        while base < len {
            for i in base..base + stride {
                let a0 = self.amplitudes[i];
                let a1 = self.amplitudes[i + stride];
                self.amplitudes[i] = m[0] * a0 + m[1] * a1;
                self.amplitudes[i + stride] = m[2] * a0 + m[3] * a1;
            }
            base += stride * 2;
        }
    }

    fn apply2(&mut self, m: &[Complex64], q0: usize, q1: usize) {
        let n = self.num_qubits;
        let s0 = 1usize << (n - 1 - q0);
        let s1 = 1usize << (n - 1 - q1);
        let len = self.amplitudes.len();
        for idx in 0..len {
            // Process each basis group once: pick representatives where both
            // qubits are 0.
            if idx & s0 != 0 || idx & s1 != 0 {
                continue;
            }
            let i00 = idx;
            let i01 = idx | s1;
            let i10 = idx | s0;
            let i11 = idx | s0 | s1;
            let a = [
                self.amplitudes[i00],
                self.amplitudes[i01],
                self.amplitudes[i10],
                self.amplitudes[i11],
            ];
            for (row, &target) in [i00, i01, i10, i11].iter().enumerate() {
                let mut acc = Complex64::ZERO;
                for (col, &amp) in a.iter().enumerate() {
                    acc += m[row * 4 + col] * amp;
                }
                self.amplitudes[target] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtn_circuit::{circuit_to_network, contract_network_naive, Gate, OutputSpec, RqcConfig};
    use qtn_tensor::c64;

    #[test]
    fn zero_state_is_normalised() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.amplitude(&[0, 0, 0]), Complex64::ONE);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips_qubit() {
        let mut c = Circuit::new(3);
        c.push1(Gate::X, 1);
        let sv = StateVector::simulate(&c);
        assert!((sv.amplitude(&[0, 1, 0]) - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn bell_state_amplitudes() {
        let mut c = Circuit::new(2);
        c.push1(Gate::H, 0).push2(Gate::Cnot, 0, 1);
        let sv = StateVector::simulate(&c);
        let h = 1.0 / 2f64.sqrt();
        assert!((sv.amplitude(&[0, 0]) - c64(h, 0.0)).abs() < 1e-12);
        assert!((sv.amplitude(&[1, 1]) - c64(h, 0.0)).abs() < 1e-12);
        assert!(sv.amplitude(&[0, 1]).abs() < 1e-12);
    }

    #[test]
    fn unitarity_preserved_on_random_circuit() {
        let c = RqcConfig::small(3, 3, 8, 17).build();
        let sv = StateVector::simulate(&c);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matches_naive_tensor_network_contraction() {
        // Cross-validation of the two independent simulation methods.
        let c = RqcConfig::small(2, 3, 6, 23).build();
        let sv = StateVector::simulate(&c);
        let n = c.num_qubits();
        for pattern in [0usize, 1, 0b101010 % (1 << n), (1 << n) - 1] {
            let bits: Vec<u8> = (0..n).map(|q| ((pattern >> (n - 1 - q)) & 1) as u8).collect();
            let build = circuit_to_network(&c, &OutputSpec::Amplitude(bits.clone()));
            let tn = contract_network_naive(&build).scalar_value();
            let reference = sv.amplitude(&bits);
            assert!((tn - reference).abs() < 1e-9, "bits {bits:?}: TN {tn:?} vs SV {reference:?}");
        }
    }

    #[test]
    fn two_qubit_gate_on_non_adjacent_qubits() {
        let mut c = Circuit::new(4);
        c.push1(Gate::H, 0).push2(Gate::Cnot, 0, 3);
        let sv = StateVector::simulate(&c);
        let h = 1.0 / 2f64.sqrt();
        assert!((sv.amplitude(&[0, 0, 0, 0]) - c64(h, 0.0)).abs() < 1e-12);
        assert!((sv.amplitude(&[1, 0, 0, 1]) - c64(h, 0.0)).abs() < 1e-12);
        assert!(sv.amplitude(&[1, 0, 0, 0]).abs() < 1e-12);
    }

    #[test]
    fn gate_order_of_arguments_matters_for_cnot() {
        // CNOT(0,1) vs CNOT(1,0) differ on |10>.
        let mut a = Circuit::new(2);
        a.push1(Gate::X, 0).push2(Gate::Cnot, 0, 1);
        let mut b = Circuit::new(2);
        b.push1(Gate::X, 0).push2(Gate::Cnot, 1, 0);
        let sva = StateVector::simulate(&a);
        let svb = StateVector::simulate(&b);
        assert!((sva.amplitude(&[1, 1]) - Complex64::ONE).abs() < 1e-12);
        assert!((svb.amplitude(&[1, 0]) - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn too_many_qubits_panics() {
        StateVector::zero_state(40);
    }
}
