//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so this small local
//! crate provides the API surface the workspace relies on — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over `f64`/`usize` ranges
//! and `Rng::gen_bool` — backed by the xoshiro256++ generator seeded through
//! SplitMix64. The streams differ from the real `rand::rngs::StdRng`
//! (ChaCha12), but every consumer in this workspace only needs seeded
//! determinism and decent statistical quality, both of which xoshiro256++
//! provides.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`a..b` over `f64`/`usize`, `a..=b`
    /// over `usize`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Return `true` with probability `p` (which must lie in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        uniform_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a uniform value of type `T` from an RNG.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map 64 random bits to a uniform double in `[0, 1)` using the top 53 bits.
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = (end - start) as u64 + 1;
        if span == 0 {
            // start = 0, end = usize::MAX on 64-bit: the whole u64 domain.
            return rng.next_u64() as usize;
        }
        start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange<u32> for Range<u32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as u32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize =
            (0..100).filter(|_| a.gen_range(0.0..1.0) == c.gen_range(0.0..1.0)).count();
        assert_eq!(same, 0, "different seeds should give different streams");
    }

    #[test]
    fn f64_samples_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64).abs() < 0.02, "mean {} too far from 0", sum / n as f64);
    }

    #[test]
    fn usize_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
        for _ in 0..50 {
            let v = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "gen_bool(0.3) hit {hits}/10000");
    }
}
