//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this small local
//! crate implements the benchmark-facing API the workspace's benches are
//! written against: `Criterion::benchmark_group`, `BenchmarkGroup`
//! (`sample_size` / `throughput` / `bench_function` / `bench_with_input` /
//! `finish`), `Bencher::iter`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical machinery it runs a fixed warm-up plus `sample_size` timed
//! iterations and prints mean / best wall-clock per iteration (and
//! throughput when one was declared).

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name and/or a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Declared throughput of one benchmark iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; handed to the benchmark functions.
pub struct Bencher {
    samples: usize,
    mean: Duration,
    best: Duration,
}

impl Bencher {
    /// Run `f` for the configured number of samples and record timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration (cache warming, lazy init).
        hint::black_box(f());
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            hint::black_box(f());
            let elapsed = start.elapsed();
            total += elapsed;
            best = best.min(elapsed);
        }
        self.mean = total / self.samples as u32;
        self.best = best;
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher =
            Bencher { samples: self.sample_size, mean: Duration::ZERO, best: Duration::ZERO };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Run one benchmark that receives an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher =
            Bencher { samples: self.sample_size, mean: Duration::ZERO, best: Duration::ZERO };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Finish the group (stateless in this stand-in; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let mut line = format!(
            "{:<40} mean {:>12?}  best {:>12?}",
            format!("{}/{}", self.name, id),
            bencher.mean,
            bencher.best
        );
        if let Some(tp) = self.throughput {
            let secs = bencher.mean.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Elements(n) => {
                        let _ = write!(line, "  {:>10.3} Melem/s", n as f64 / secs / 1e6);
                    }
                    Throughput::Bytes(n) => {
                        let _ =
                            write!(line, "  {:>10.3} MiB/s", n as f64 / secs / (1 << 20) as f64);
                    }
                }
            }
        }
        println!("{line}");
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    /// Run a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.benchmark_group(name);
        let mut bencher =
            Bencher { samples: group.sample_size, mean: Duration::ZERO, best: Duration::ZERO };
        f(&mut bencher);
        let id = BenchmarkId::from_parameter("bench");
        group.report(&id, &bencher);
        self
    }
}

/// Bundle benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generate `main` from one or more `criterion_group!` outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_the_input_through() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &x| {
            b.iter(|| assert_eq!(x, 7));
        });
    }
}
